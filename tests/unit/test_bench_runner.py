"""Unit tests for the benchmark runner and derived metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import RTreeIndex, ScanIndex
from repro.bench import RunResult, run_workload
from repro.bench.metrics import (
    break_even_query,
    converged_slowdown,
    cumulative_ratio,
    data_to_insight_factor,
    sample_indices,
    smoothed_series,
    speedup_tail,
    work_break_even_query,
    work_insight_factor,
    work_ratio,
)
from repro.bench.runner import QueryTiming
from repro.core import QuasiiIndex
from repro.datasets import make_uniform
from repro.queries import uniform_workload


def synthetic_run(name, build, per_query, build_work=0, work_per_query=0):
    timings = [
        QueryTiming(
            seq=i,
            seconds=s,
            results=1,
            objects_tested=work_per_query,
            cracks=0,
            rows_reorganized=0,
        )
        for i, s in enumerate(per_query)
    ]
    return RunResult(name, build, timings, build_work=build_work)


class TestRunWorkload:
    def test_times_build_and_queries(self):
        ds = make_uniform(1_000, seed=1)
        queries = uniform_workload(ds.universe, 5, 1e-2, seed=2)
        run = run_workload(RTreeIndex(ds.store.copy()), queries)
        assert run.build_seconds > 0
        assert run.n_queries == 5
        assert all(t.seconds >= 0 for t in run.timings)
        assert run.build_work > 0

    def test_incremental_has_no_build_time(self):
        ds = make_uniform(1_000, seed=3)
        queries = uniform_workload(ds.universe, 5, 1e-2, seed=4)
        run = run_workload(QuasiiIndex(ds.store.copy()), queries)
        assert run.build_seconds == 0 or run.build_seconds < 1e-3
        assert run.build_work == 0
        assert run.timings[0].rows_reorganized > 0

    def test_counter_deltas_are_per_query(self):
        ds = make_uniform(500, seed=5)
        queries = uniform_workload(ds.universe, 4, 1e-2, seed=6)
        run = run_workload(ScanIndex(ds.store.copy()), queries)
        assert all(t.objects_tested == 500 for t in run.timings)

    def test_results_counted(self):
        ds = make_uniform(500, seed=7)
        queries = uniform_workload(ds.universe, 3, 0.05, seed=8)
        scan_run = run_workload(ScanIndex(ds.store.copy()), queries)
        assert sum(t.results for t in scan_run.timings) > 0


class TestRunResultDerived:
    def test_cumulative_includes_build(self):
        run = synthetic_run("x", 10.0, [1.0, 1.0, 1.0])
        assert np.allclose(run.cumulative_seconds(), [11.0, 12.0, 13.0])
        assert np.allclose(run.cumulative_seconds(False), [1.0, 2.0, 3.0])
        assert run.total_seconds() == pytest.approx(13.0)

    def test_first_answer(self):
        run = synthetic_run("x", 10.0, [2.0, 1.0])
        assert run.first_answer_seconds() == pytest.approx(12.0)

    def test_tail_mean(self):
        run = synthetic_run("x", 0.0, [9.0, 1.0, 1.0])
        assert run.tail_mean_seconds(2) == pytest.approx(1.0)

    def test_work_accounting(self):
        run = synthetic_run("x", 0.0, [1.0] * 3, build_work=100, work_per_query=10)
        assert run.total_work() == 130
        assert run.cumulative_work(False).tolist() == [10, 20, 30]


class TestMetrics:
    def test_break_even_detects_crossing(self):
        static = synthetic_run("s", 10.0, [1.0] * 10)
        incr = synthetic_run("i", 0.0, [3.0] * 10)
        # cumulative incr: 3,6,..,30; static: 11,12,..,20.  At q5 both are
        # 15 (a tie is not a crossing); incr first *exceeds* at q6 (18>16).
        assert break_even_query(incr, static) == 6

    def test_break_even_never(self):
        static = synthetic_run("s", 100.0, [1.0] * 5)
        incr = synthetic_run("i", 0.0, [2.0] * 5)
        assert break_even_query(incr, static) is None

    def test_data_to_insight(self):
        static = synthetic_run("s", 10.0, [1.0])
        incr = synthetic_run("i", 0.0, [2.0])
        assert data_to_insight_factor(incr, static) == pytest.approx(5.5)

    def test_cumulative_ratio(self):
        static = synthetic_run("s", 5.0, [1.0] * 5)
        incr = synthetic_run("i", 0.0, [1.0] * 5)
        assert cumulative_ratio(incr, static) == pytest.approx(0.5)

    def test_converged_slowdown(self):
        static = synthetic_run("s", 0.0, [1.0] * 10)
        incr = synthetic_run("i", 0.0, [5.0] * 5 + [2.0] * 5)
        assert converged_slowdown(incr, static, tail=5) == pytest.approx(2.0)

    def test_speedup_tail(self):
        slow = synthetic_run("a", 0.0, [4.0] * 4)
        fast = synthetic_run("b", 0.0, [1.0] * 4)
        assert speedup_tail(slow, fast, 4) == pytest.approx(4.0)

    def test_work_break_even(self):
        static = synthetic_run("s", 0.0, [0.0] * 5, build_work=100, work_per_query=1)
        incr = synthetic_run("i", 0.0, [0.0] * 5, build_work=0, work_per_query=30)
        # incr work: 30,60,90,120,150; static: 101..105 -> crossing at q4.
        assert work_break_even_query(incr, static) == 4

    def test_work_ratio_and_insight(self):
        static = synthetic_run("s", 0.0, [0.0] * 2, build_work=80, work_per_query=10)
        incr = synthetic_run("i", 0.0, [0.0] * 2, build_work=0, work_per_query=20)
        assert work_ratio(incr, static) == pytest.approx(40 / 100)
        assert work_insight_factor(incr, static) == pytest.approx(90 / 20)

    def test_sample_indices_small(self):
        assert sample_indices(5) == [0, 1, 2, 3, 4]

    def test_sample_indices_geometric(self):
        picks = sample_indices(1000, 10)
        assert picks[0] == 0 and picks[-1] == 999
        assert len(picks) <= 10
        assert picks == sorted(picks)

    def test_smoothed_series(self):
        vals = np.array([1.0, 100.0, 1.0])
        assert smoothed_series(vals, 1, window=3) == pytest.approx(34.0)
