"""Unit tests for the Slice/SliceList structure."""

from __future__ import annotations

import numpy as np

from repro.core.slices import Slice, SliceList
from repro.datasets import BoxStore

INF = float("inf")


def make_slice(level=0, begin=0, end=4, cut_lo=-INF, d=2):
    return Slice(
        level, begin, end, cut_lo, np.full(d, -INF), np.full(d, INF)
    )


class TestSlice:
    def test_size(self):
        assert make_slice(begin=3, end=9).size == 6

    def test_open_mbb_intersects_everything(self):
        s = make_slice()
        assert s.intersects(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        assert s.intersects(np.array([-1e18, 0.0]), np.array([-1e17, 0.0]))

    def test_partial_mbb_prunes_on_known_dim(self):
        s = make_slice()
        s.mbb_lo[0], s.mbb_hi[0] = 10.0, 20.0
        assert not s.intersects(np.array([0.0, 0.0]), np.array([5.0, 5.0]))
        assert s.intersects(np.array([15.0, -1e9]), np.array([16.0, 1e9]))

    def test_touching_mbb_intersects(self):
        s = make_slice()
        s.mbb_lo[:] = [0.0, 0.0]
        s.mbb_hi[:] = [1.0, 1.0]
        assert s.intersects(np.array([1.0, 1.0]), np.array([2.0, 2.0]))

    def test_finalize_mbb(self):
        lo = np.array([[0.0, 5.0], [2.0, 1.0], [4.0, 3.0]])
        store = BoxStore(lo, lo + 1.0)
        s = make_slice(begin=1, end=3)
        s.finalize_mbb(store)
        assert np.array_equal(s.mbb_lo, [2.0, 1.0])
        assert np.array_equal(s.mbb_hi, [5.0, 4.0])


class TestSliceList:
    def make_list(self):
        slices = [
            make_slice(begin=0, end=2, cut_lo=-INF),
            make_slice(begin=2, end=5, cut_lo=3.0),
            make_slice(begin=5, end=9, cut_lo=7.0),
        ]
        return SliceList(0, slices)

    def test_find_start_before_everything(self):
        lst = self.make_list()
        assert lst.find_start(-1e18) == 0

    def test_find_start_inside(self):
        lst = self.make_list()
        assert lst.find_start(4.5) == 1
        assert lst.find_start(7.0) == 2

    def test_find_start_boundary_value(self):
        lst = self.make_list()
        # Value exactly at a cut bound starts at the slice owning it.
        assert lst.find_start(3.0) == 1

    def test_find_start_past_everything(self):
        lst = self.make_list()
        assert lst.find_start(1e18) == 2

    def test_replace_keeps_order(self):
        lst = self.make_list()
        subs = [
            make_slice(begin=2, end=3, cut_lo=3.0),
            make_slice(begin=3, end=5, cut_lo=5.0),
        ]
        lst.replace(1, subs)
        assert len(lst) == 4
        assert [s.cut_lo for s in lst] == [-INF, 3.0, 5.0, 7.0]
        assert lst.find_start(6.0) == 2

    def test_replace_with_single(self):
        lst = self.make_list()
        sub = make_slice(begin=2, end=5, cut_lo=3.5)
        lst.replace(1, [sub])
        assert len(lst) == 3
        assert lst[1].cut_lo == 3.5

    def test_iteration_and_indexing(self):
        lst = self.make_list()
        assert [s.begin for s in lst] == [0, 2, 5]
        assert lst[2].end == 9

    def test_memory_bytes_positive(self):
        assert self.make_list().memory_bytes() > 0
