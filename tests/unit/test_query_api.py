"""Unit tests for the first-class query API.

Query spec validation, execute/execute_batch/plan on every index,
result-mode payloads, the legacy-wrapper equivalence pin, and degenerate
(point/line) windows through every index.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    MosaicIndex,
    RTreeIndex,
    SFCIndex,
    SFCrackerIndex,
    ScanIndex,
    UniformGridIndex,
)
from repro.core import QuasiiIndex
from repro.datasets import BoxStore
from repro.errors import QueryError
from repro.geometry import Box
from repro.queries import (
    PREDICATES,
    RESULT_MODES,
    Query,
    QueryResult,
    RangeQuery,
    as_query,
)
from repro.sharding import ShardedIndex

UNIVERSE = Box((0.0, 0.0), (100.0, 100.0))


def _store(seed: int = 5, n: int = 300) -> BoxStore:
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, 90, size=(n, 2))
    hi = lo + rng.uniform(0, 10, size=(n, 2))
    return BoxStore(lo, np.minimum(hi, 100.0))


def _all_indexes(store: BoxStore):
    """One built instance of every index, each over a private store copy."""
    out = []
    for factory in (
        lambda s: ScanIndex(s),
        lambda s: UniformGridIndex(s, UNIVERSE, 6),
        lambda s: RTreeIndex(s, capacity=8),
        lambda s: SFCIndex(s, UNIVERSE),
        lambda s: SFCrackerIndex(s, UNIVERSE),
        lambda s: MosaicIndex(s, UNIVERSE, capacity=8),
        lambda s: QuasiiIndex(s),
        lambda s: ShardedIndex(s, n_shards=3),
    ):
        index = factory(store.copy())
        index.build()
        out.append(index)
    return out


WINDOWS = [
    Box((10.0, 10.0), (60.0, 60.0)),
    Box((0.0, 0.0), (100.0, 100.0)),
    Box((95.0, 95.0), (99.0, 99.0)),   # likely-empty corner
    Box((30.0, 40.0), (30.0, 40.0)),   # degenerate point
    Box((0.0, 50.0), (100.0, 50.0)),   # degenerate line
]


class TestQuerySpec:
    def test_defaults(self):
        q = Query(WINDOWS[0])
        assert q.predicate == "intersects"
        assert q.mode == "ids"
        assert not q.count_only

    def test_rejects_unknown_predicate_and_mode(self):
        with pytest.raises(QueryError, match="predicate"):
            Query(WINDOWS[0], predicate="overlaps")
        with pytest.raises(QueryError, match="result mode"):
            Query(WINDOWS[0], mode="rows")

    def test_top_k_requires_limit(self):
        with pytest.raises(QueryError, match="top_k"):
            Query(WINDOWS[0], mode="top_k")
        with pytest.raises(QueryError, match="top_k"):
            Query(WINDOWS[0], mode="top_k", k=0)
        with pytest.raises(QueryError, match="top_k option"):
            Query(WINDOWS[0], mode="ids", k=3)

    def test_covers_point_requires_point_window(self):
        with pytest.raises(QueryError, match="point window"):
            Query(WINDOWS[0], predicate="covers_point")
        q = Query.point((3.0, 4.0))
        assert q.predicate == "covers_point"
        assert q.window.lo == q.window.hi == (3.0, 4.0)

    def test_negative_seq_rejected(self):
        with pytest.raises(QueryError):
            Query(WINDOWS[0], seq=-1)

    def test_as_query_upgrades_range_query(self):
        rq = RangeQuery(WINDOWS[0], seq=4)
        q = as_query(rq)
        assert isinstance(q, Query)
        assert q.window == rq.window and q.seq == 4
        assert as_query(q) is q
        with pytest.raises(QueryError):
            as_query("not a query")

    def test_round_trip_to_range(self):
        q = Query(WINDOWS[0], seq=2)
        assert q.as_range() == RangeQuery(WINDOWS[0], seq=2)


def _oracle_match_mask(store: BoxStore, query: Query) -> np.ndarray:
    lo, hi = store.lo, store.hi
    if query.predicate == "intersects":
        mask = np.all(lo <= query.hi, axis=1) & np.all(hi >= query.lo, axis=1)
    elif query.predicate == "within":
        mask = np.all(lo >= query.lo, axis=1) & np.all(hi <= query.hi, axis=1)
    else:  # contains / covers_point
        mask = np.all(lo <= query.lo, axis=1) & np.all(hi >= query.hi, axis=1)
    return mask & store.live


class TestExecuteMatrix:
    @pytest.mark.parametrize("predicate", PREDICATES)
    def test_every_index_agrees_with_first_principles(self, predicate):
        store = _store()
        for window in WINDOWS:
            if predicate == "covers_point" and window.lo != window.hi:
                continue
            query = Query(window, predicate=predicate)
            expect_ids = np.sort(
                store.ids[_oracle_match_mask(store, query)]
            )
            for index in _all_indexes(store):
                res = index.execute(query)
                assert res.count == expect_ids.size, (
                    f"{index.name} count for {predicate}"
                )
                assert np.array_equal(np.sort(res.ids), expect_ids), (
                    f"{index.name} ids for {predicate} on {window}"
                )

    def test_count_mode_matches_ids_mode(self):
        store = _store()
        for index in _all_indexes(store):
            for window in WINDOWS:
                full = index.execute(Query(window))
                counted = index.execute(Query(window, mode="count"))
                assert counted.ids is None and counted.boxes is None
                assert counted.count == full.ids.size == full.count

    def test_boxes_mode_returns_matching_geometry(self):
        store = _store()
        window = WINDOWS[0]
        for index in _all_indexes(store):
            res = index.execute(Query(window, mode="boxes"))
            assert res.boxes is not None
            lo, hi = res.boxes
            assert lo.shape == hi.shape == (res.ids.size, store.ndim)
            # Every returned box must be the stored geometry of its id.
            order = np.argsort(store.ids, kind="stable")
            rows = order[np.searchsorted(store.ids[order], res.ids)]
            assert np.allclose(store.lo[rows], lo)
            assert np.allclose(store.hi[rows], hi)

    def test_top_k_by_area(self):
        store = _store()
        window = Box((0.0, 0.0), (100.0, 100.0))
        k = 7
        # First-principles ranking: volume descending, id ascending.
        vols = np.prod(store.hi - store.lo, axis=1)
        expect = store.ids[np.lexsort((store.ids, -vols))][:k]
        for index in _all_indexes(store):
            res = index.execute(Query(window, mode="top_k", k=k))
            assert res.count == store.n          # count is total matches
            assert res.ids.size == k             # payload is capped at k
            assert np.array_equal(res.ids, expect), index.name
            lo, hi = res.boxes
            got_vols = np.prod(hi - lo, axis=1)
            assert np.all(np.diff(got_vols) <= 1e-12)

    def test_top_k_with_fewer_matches_than_k(self):
        store = _store()
        window = WINDOWS[2]
        for index in _all_indexes(store):
            res = index.execute(Query(window, mode="top_k", k=1000))
            assert res.ids.size == res.count <= 1000


class TestResultAccounting:
    def test_stats_delta_and_seconds(self):
        index = ScanIndex(_store())
        res = index.execute(Query(WINDOWS[0]))
        assert res.stats.queries == 1
        assert res.stats.objects_tested == index.store.n
        assert res.stats.results_returned == res.ids.size
        assert res.seconds >= 0.0

    def test_quasii_stats_show_cracking(self):
        index = QuasiiIndex(_store())
        res = index.execute(Query(WINDOWS[0]))
        assert res.stats.cracks > 0
        assert res.stats.rows_reorganized > 0
        second = index.execute(Query(WINDOWS[0]))
        assert second.stats.rows_reorganized <= res.stats.rows_reorganized


class TestExecuteBatch:
    def test_batch_equals_loop_everywhere(self):
        store = _store()
        queries = []
        for i, window in enumerate(WINDOWS):
            queries.append(Query(window, seq=i))
            queries.append(Query(window, predicate="within", mode="count"))
            queries.append(Query(window, mode="top_k", k=3))
        queries.append(Query.point((30.0, 40.0)))
        for index in _all_indexes(store):
            loop = [
                ScanIndex(store.copy()).execute(q) for q in queries
            ]
            batch = index.execute_batch(queries)
            assert len(batch) == len(queries)
            for a, b in zip(loop, batch):
                assert a.count == b.count, index.name
                if a.ids is None:
                    assert b.ids is None
                else:
                    assert np.array_equal(np.sort(a.ids), np.sort(b.ids))

    def test_batch_preserves_submission_order_and_flow_counters(self):
        index = ScanIndex(_store())
        queries = [Query(w, seq=i) for i, w in enumerate(WINDOWS)]
        results = index.execute_batch(queries)
        assert [r.query.seq for r in results] == list(range(len(WINDOWS)))
        assert index.stats.queries == len(WINDOWS)
        assert index.stats.results_returned == sum(r.count for r in results)

    def test_batch_rejects_wrong_dimensionality(self):
        index = ScanIndex(_store())
        with pytest.raises(QueryError, match="dims"):
            index.execute_batch([Query(Box((0.0,) * 3, (1.0,) * 3))])

    def test_empty_batch(self):
        for index in _all_indexes(_store()):
            assert index.execute_batch([]) == []


class TestPlan:
    def test_plan_never_mutates(self):
        store = _store()
        for index in _all_indexes(store):
            fp = index.store.fingerprint()
            before = index.stats.snapshot()
            plan = index.plan(Query(WINDOWS[0]))
            assert index.store.fingerprint() == fp, index.name
            assert index.stats.snapshot() == before, index.name
            assert plan.index == index.name
            assert plan.candidates >= 0 and plan.nodes >= 0
            assert isinstance(plan.explain(), str)

    def test_plan_candidates_cover_execution(self):
        # The plan's candidate count must upper-bound what a subsequent
        # execution of the same query actually matches.
        store = _store()
        query = Query(WINDOWS[0])
        for index in _all_indexes(store):
            plan = index.plan(query)
            res = index.execute(query)
            assert plan.candidates >= res.count, index.name

    def test_sharded_plan_reports_shards(self):
        engine = ShardedIndex(_store(), n_shards=3)
        engine.build()
        plan = engine.plan(Query(Box((0.0, 0.0), (100.0, 100.0))))
        assert plan.shards == 3
        assert "shards=3" in plan.explain()
        tiny = engine.plan(Query.point((50.0, 50.0)))
        assert 0 <= tiny.shards <= 3


class TestLegacyWrapper:
    def test_query_and_execute_return_identical_id_sets(self):
        # The deprecation-hygiene pin: query(RangeQuery) is documented
        # as legacy and must stay a faithful wrapper over execute().
        store = _store()
        for index in _all_indexes(store):
            for i, window in enumerate(WINDOWS):
                via_legacy = np.sort(index.query(RangeQuery(window, seq=i)))
                via_execute = np.sort(
                    index.execute(Query(window, seq=i)).ids
                )
                assert np.array_equal(via_legacy, via_execute), index.name

    def test_execute_accepts_range_query(self):
        index = ScanIndex(_store())
        res = index.execute(RangeQuery(WINDOWS[0]))
        assert isinstance(res, QueryResult)
        assert res.query.predicate == "intersects"


class TestDegenerateWindows:
    def test_point_and_line_windows_through_every_index(self):
        store = _store()
        scan = ScanIndex(store.copy())
        for window in WINDOWS[3:]:  # the degenerate point and line
            rq = RangeQuery(window)
            assert rq.volume == 0.0
            expect = np.sort(scan.query(rq))
            for index in _all_indexes(store):
                got = np.sort(index.query(rq))
                assert np.array_equal(got, expect), (
                    f"{index.name} on degenerate window {window}"
                )

    def test_point_window_hits_covering_boxes(self):
        lo = np.array([[0.0, 0.0], [50.0, 50.0]])
        hi = np.array([[10.0, 10.0], [60.0, 60.0]])
        index = ScanIndex(BoxStore(lo, hi))
        hits = index.query(RangeQuery(Box((5.0, 5.0), (5.0, 5.0))))
        assert hits.tolist() == [0]

    def test_modes_line_up(self):
        assert set(RESULT_MODES) == {"ids", "boxes", "count", "top_k"}
