"""Unit tests for dataset generators (paper Section 6.1 distributions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    make_gaussian_mixture,
    make_neuro_like,
    make_points,
    make_uniform,
)
from repro.errors import ConfigurationError


class TestUniform:
    def test_count_and_dims(self):
        ds = make_uniform(500, ndim=3, seed=1)
        assert ds.n == 500 and ds.ndim == 3
        assert ds.name == "uniform-500"

    def test_objects_inside_universe(self):
        ds = make_uniform(1000, seed=2)
        uni_lo = np.asarray(ds.universe.lo)
        uni_hi = np.asarray(ds.universe.hi)
        assert np.all(ds.store.lo >= uni_lo) and np.all(ds.store.hi <= uni_hi)

    def test_side_distribution_matches_paper(self):
        # 99% small sides in [1,10], 1% large in [10,1000].
        ds = make_uniform(20_000, seed=3)
        sides = ds.store.hi - ds.store.lo
        max_side = sides.max(axis=1)
        large = (max_side > 10.0 + 1e-9).mean()
        assert 0.005 <= large <= 0.02, f"expected ~1% large objects, got {large:.3%}"
        # Clipping can shrink a side, never grow it past the draw range.
        assert max_side.max() <= 1000.0 + 1e-9

    def test_deterministic_per_seed(self):
        a = make_uniform(100, seed=5)
        b = make_uniform(100, seed=5)
        assert np.array_equal(a.store.lo, b.store.lo)
        c = make_uniform(100, seed=6)
        assert not np.array_equal(a.store.lo, c.store.lo)

    def test_zero_large_fraction(self):
        ds = make_uniform(1000, large_fraction=0.0, seed=1)
        sides = ds.store.hi - ds.store.lo
        assert sides.max() <= 10.0 + 1e-9

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            make_uniform(0)
        with pytest.raises(ConfigurationError):
            make_uniform(10, ndim=0)
        with pytest.raises(ConfigurationError):
            make_uniform(10, universe_side=-1.0)
        with pytest.raises(ConfigurationError):
            make_uniform(10, large_fraction=1.5)


class TestNeuroLike:
    def test_count(self):
        ds = make_neuro_like(800, seed=1)
        assert ds.n == 800

    def test_skew_is_present(self):
        # Density contrast: split the universe into 8^3 cells and compare
        # the most and least populated non-empty cells.
        ds = make_neuro_like(20_000, seed=9)
        centers = (ds.store.lo + ds.store.hi) / 2
        side = ds.universe.hi[0] / 8
        cells = np.clip((centers // side).astype(int), 0, 7)
        flat = cells[:, 0] * 64 + cells[:, 1] * 8 + cells[:, 2]
        counts = np.bincount(flat, minlength=512)
        uniform_expected = 20_000 / 512
        assert counts.max() > 10 * uniform_expected, "dataset should be skewed"

    def test_skew_exceeds_uniform_dataset(self):
        neuro = make_neuro_like(10_000, seed=4)
        uni = make_uniform(10_000, seed=4)

        def peak_density(ds):
            centers = (ds.store.lo + ds.store.hi) / 2
            side = ds.universe.hi[0] / 8
            cells = np.clip((centers // side).astype(int), 0, 7)
            flat = cells[:, 0] * 64 + cells[:, 1] * 8 + cells[:, 2]
            return np.bincount(flat, minlength=512).max()

        assert peak_density(neuro) > 3 * peak_density(uni)

    def test_objects_are_small_and_elongated(self):
        ds = make_neuro_like(5_000, seed=2)
        sides = ds.store.hi - ds.store.lo
        # Max side bounded by the segment length cap.
        assert sides.max() <= 30.0 + 1e-9
        # Elongation: longest side typically much larger than shortest.
        ratio = sides.max(axis=1) / np.maximum(sides.min(axis=1), 1e-9)
        assert np.median(ratio) > 2.0

    def test_inside_universe(self):
        ds = make_neuro_like(2_000, seed=3)
        assert np.all(ds.store.lo >= np.asarray(ds.universe.lo))
        assert np.all(ds.store.hi <= np.asarray(ds.universe.hi))

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            make_neuro_like(100, n_clusters=0)
        with pytest.raises(ConfigurationError):
            make_neuro_like(100, background_fraction=1.0)
        with pytest.raises(ConfigurationError):
            make_neuro_like(100, long_fraction=1.5)

    def test_long_tail_fraction(self):
        ds = make_neuro_like(
            10_000, long_fraction=0.01, long_length=(150.0, 400.0), seed=5
        )
        sides = ds.store.hi - ds.store.lo
        long = (sides.max(axis=1) > 60.0).mean()
        assert 0.005 <= long <= 0.02, "1% of objects should be long"
        # The tail drives the max extent far above the typical extent.
        assert sides.max() > 100.0
        assert np.median(sides.max(axis=1)) < 35.0

    def test_no_long_tail_by_default(self):
        ds = make_neuro_like(5_000, seed=6)
        sides = ds.store.hi - ds.store.lo
        assert sides.max() <= 30.0 + 1e-9


class TestOtherGenerators:
    def test_gaussian_mixture(self):
        ds = make_gaussian_mixture(500, n_clusters=2, seed=1)
        assert ds.n == 500
        assert np.all(ds.store.lo <= ds.store.hi)

    def test_gaussian_rejects_zero_clusters(self):
        with pytest.raises(ConfigurationError):
            make_gaussian_mixture(100, n_clusters=0)

    def test_points_have_zero_extent(self):
        ds = make_points(300, seed=1)
        assert np.all(ds.store.lo == ds.store.hi)
        assert np.allclose(ds.store.max_extent, 0.0)

    def test_2d_generation(self):
        ds = make_uniform(200, ndim=2, seed=1)
        assert ds.ndim == 2
        assert ds.universe.ndim == 2
