"""Unit tests for the kNN extension (expanding-window search)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import RTreeIndex, ScanIndex
from repro.core import QuasiiIndex
from repro.datasets import BoxStore, make_uniform
from repro.errors import QueryError
from repro.extensions import k_nearest
from repro.extensions.knn import box_distances


def brute_force_knn(ds, point, k):
    pt = np.asarray(point)
    dists = box_distances(ds.store.lo, ds.store.hi, pt)
    order = np.lexsort((ds.store.ids, dists))
    return [(int(ds.store.ids[i]), float(dists[i])) for i in order[:k]]


class TestBoxDistances:
    def test_point_inside_box_is_zero(self):
        lo = np.array([[0.0, 0.0]])
        hi = np.array([[2.0, 2.0]])
        assert box_distances(lo, hi, np.array([1.0, 1.0]))[0] == 0.0

    def test_axis_distance(self):
        lo = np.array([[0.0, 0.0]])
        hi = np.array([[1.0, 1.0]])
        assert box_distances(lo, hi, np.array([3.0, 0.5]))[0] == pytest.approx(2.0)

    def test_corner_distance(self):
        lo = np.array([[0.0, 0.0]])
        hi = np.array([[1.0, 1.0]])
        d = box_distances(lo, hi, np.array([4.0, 5.0]))[0]
        assert d == pytest.approx(5.0)  # 3-4-5 triangle


class TestKNearest:
    @pytest.mark.parametrize("k", [1, 5, 25])
    def test_matches_brute_force_scan(self, k):
        ds = make_uniform(2_000, seed=21)
        index = ScanIndex(ds.store.copy())
        point = (5000.0, 5000.0, 5000.0)
        got = k_nearest(index, point, k)
        expect = brute_force_knn(ds, point, k)
        got_d = [d for _, d in got]
        exp_d = [d for _, d in expect]
        assert np.allclose(got_d, exp_d), "distances must match brute force"

    def test_on_quasii_while_converging(self):
        ds = make_uniform(5_000, seed=22)
        index = QuasiiIndex(ds.store.copy())
        point = (2000.0, 7000.0, 4000.0)
        got = k_nearest(index, point, 10)
        expect = brute_force_knn(ds, point, 10)
        assert np.allclose([d for _, d in got], [d for _, d in expect])
        index.validate_structure()

    def test_on_rtree(self):
        ds = make_uniform(3_000, seed=23)
        index = RTreeIndex(ds.store.copy())
        index.build()
        point = (100.0, 100.0, 100.0)  # near a corner: forces expansion
        got = k_nearest(index, point, 7)
        expect = brute_force_knn(ds, point, 7)
        assert np.allclose([d for _, d in got], [d for _, d in expect])

    def test_results_sorted_by_distance(self):
        ds = make_uniform(1_000, seed=24)
        got = k_nearest(ScanIndex(ds.store.copy()), (5000.0,) * 3, 20)
        dists = [d for _, d in got]
        assert dists == sorted(dists)

    def test_k_equals_n(self):
        ds = make_uniform(50, seed=25)
        got = k_nearest(ScanIndex(ds.store.copy()), (0.0,) * 3, 50)
        assert len(got) == 50
        assert len({i for i, _ in got}) == 50

    def test_point_on_top_of_object(self):
        lo = np.array([[1.0, 1.0], [10.0, 10.0]])
        store = BoxStore(lo, lo + 1.0)
        got = k_nearest(ScanIndex(store), (1.5, 1.5), 1)
        assert got[0] == (0, 0.0)

    def test_rejects_bad_args(self):
        ds = make_uniform(10, seed=26)
        index = ScanIndex(ds.store.copy())
        with pytest.raises(QueryError):
            k_nearest(index, (0.0, 0.0), 1)  # wrong dimensionality
        with pytest.raises(QueryError):
            k_nearest(index, (0.0,) * 3, 0)
        with pytest.raises(QueryError):
            k_nearest(index, (0.0,) * 3, 11)
        with pytest.raises(QueryError):
            k_nearest(index, (0.0,) * 3, 1, growth=1.0)

    def test_quasii_knn_consistency_with_repeats(self):
        # The kNN queries refine the index; repeated calls must agree.
        ds = make_uniform(2_000, seed=27)
        index = QuasiiIndex(ds.store.copy())
        first = k_nearest(index, (5000.0,) * 3, 5)
        second = k_nearest(index, (5000.0,) * 3, 5)
        assert np.allclose([d for _, d in first], [d for _, d in second])
