"""Unit tests for the slice-assignment representative ablation.

Paper Section 5.1, footnote 1: QUASII assigns objects to slices by their
lower coordinate, but "the upper coordinate or the object's center can
equally be used".  All three must produce identical query results (the
data structure differs; the answers must not).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import ScanIndex
from repro.core import QuasiiIndex
from repro.datasets import BoxStore, make_neuro_like, make_uniform
from repro.errors import ConfigurationError
from repro.queries import clustered_workload, uniform_workload

REPS = ("lower", "center", "upper")


class TestConfiguration:
    def test_default_is_lower(self):
        ds = make_uniform(100, seed=1)
        assert QuasiiIndex(ds.store.copy()).representative == "lower"

    def test_rejects_unknown(self):
        ds = make_uniform(100, seed=1)
        with pytest.raises(ConfigurationError):
            QuasiiIndex(ds.store.copy(), representative="corner")


@pytest.mark.parametrize("rep", REPS)
class TestRepresentativeCorrectness:
    def test_matches_scan_uniform(self, rep):
        ds = make_uniform(2_000, seed=31)
        index = QuasiiIndex(ds.store.copy(), representative=rep)
        scan = ScanIndex(ds.store.copy())
        for q in uniform_workload(ds.universe, 25, 1e-2, seed=32):
            assert np.array_equal(
                np.sort(index.query(q)), np.sort(scan.query(q))
            ), f"representative={rep} diverged from scan"
        index.validate_structure()

    def test_matches_scan_clustered(self, rep):
        ds = make_neuro_like(2_000, seed=33)
        index = QuasiiIndex(ds.store.copy(), representative=rep)
        scan = ScanIndex(ds.store.copy())
        for q in clustered_workload(ds.universe, 2, 15, 1e-3, seed=34):
            assert np.array_equal(
                np.sort(index.query(q)), np.sort(scan.query(q))
            )
        index.validate_structure()

    def test_wide_objects_straddling_cuts(self, rep):
        # Wide boxes around a query window exercise the extension logic of
        # every representative differently.
        lo = np.array(
            [[0.0, 0.0], [3.0, 0.0], [5.2, 0.0], [9.0, 0.0], [4.9, 0.0]]
        )
        hi = np.array(
            [[5.0, 1.0], [4.0, 1.0], [5.4, 1.0], [9.5, 1.0], [8.0, 1.0]]
        )
        store = BoxStore(lo, hi)
        scan = ScanIndex(store.copy())
        index = QuasiiIndex(store, representative=rep, tau=1)
        from repro.geometry import Box
        from repro.queries import RangeQuery

        for window in (
            Box((4.5, 0.0), (5.5, 1.0)),
            Box((0.0, 0.0), (0.5, 1.0)),
            Box((9.6, 0.0), (9.9, 1.0)),
        ):
            q = RangeQuery(window)
            assert np.array_equal(
                np.sort(index.query(q)), np.sort(scan.query(q))
            ), f"representative={rep} window={window}"


class TestAllRepresentativesAgree:
    def test_three_structures_same_answers(self):
        ds = make_uniform(3_000, seed=35)
        indexes = {
            rep: QuasiiIndex(ds.store.copy(), representative=rep)
            for rep in REPS
        }
        queries = uniform_workload(ds.universe, 20, 1e-2, seed=36)
        for q in queries:
            answers = {
                rep: np.sort(idx.query(q)) for rep, idx in indexes.items()
            }
            assert np.array_equal(answers["lower"], answers["center"])
            assert np.array_equal(answers["lower"], answers["upper"])
        for idx in indexes.values():
            idx.validate_structure()
