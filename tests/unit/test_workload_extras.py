"""Unit tests for sequential workloads and workload persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, QueryError
from repro.geometry import Box
from repro.queries import (
    drifting_hotspot_workload,
    hotspot_workload,
    load_workload,
    save_workload,
    sequential_workload,
    uniform_workload,
)


class TestSequentialWorkload:
    UNIVERSE = Box((0.0,) * 3, (1000.0,) * 3)

    def test_count_and_bounds(self):
        qs = sequential_workload(self.UNIVERSE, 20, 1e-3, seed=1)
        assert len(qs) == 20
        for q in qs:
            assert self.UNIVERSE.contains_box(q.window)

    def test_sweep_is_monotone_along_dim(self):
        qs = sequential_workload(self.UNIVERSE, 8, 1e-3, dim=0, seed=2)
        starts = [q.window.lo[0] for q in qs]
        assert starts == sorted(starts), "pre-wrap sweep must move forward"

    def test_disjoint_steps_do_not_overlap(self):
        qs = sequential_workload(self.UNIVERSE, 5, 1e-3, overlap=0.0, seed=3)
        for a, b in zip(qs, qs[1:]):
            assert a.window.hi[0] <= b.window.lo[0] + 1e-9

    def test_half_overlap_shares_half_a_side(self):
        qs = sequential_workload(self.UNIVERSE, 5, 1e-3, overlap=0.5, seed=4)
        side = qs[0].window.hi[0] - qs[0].window.lo[0]
        step = qs[1].window.lo[0] - qs[0].window.lo[0]
        assert step == pytest.approx(side / 2)

    def test_off_sweep_dims_fixed(self):
        qs = sequential_workload(self.UNIVERSE, 10, 1e-3, dim=1, seed=5)
        assert len({q.window.lo[0] for q in qs}) == 1
        assert len({q.window.lo[2] for q in qs}) == 1
        assert len({q.window.lo[1] for q in qs}) == 10

    def test_long_sweep_wraps_around(self):
        qs = sequential_workload(self.UNIVERSE, 300, 1e-3, seed=6)
        starts = [q.window.lo[0] for q in qs]
        assert min(starts) < 100.0 and max(starts) > 800.0
        assert starts != sorted(starts), "a long sweep must wrap"

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            sequential_workload(self.UNIVERSE, 0)
        with pytest.raises(ConfigurationError):
            sequential_workload(self.UNIVERSE, 5, overlap=1.0)
        with pytest.raises(ConfigurationError):
            sequential_workload(self.UNIVERSE, 5, dim=3)


class TestWorkloadIO:
    def test_round_trip(self, tmp_path):
        universe = Box((0.0,) * 3, (100.0,) * 3)
        qs = uniform_workload(universe, 12, 1e-2, seed=7)
        path = save_workload(qs, tmp_path / "wl")
        assert path.suffix == ".npz"
        loaded = load_workload(path)
        assert len(loaded) == 12
        for a, b in zip(qs, loaded):
            assert a.window == b.window
            assert a.seq == b.seq

    def test_empty_workload_rejected(self, tmp_path):
        with pytest.raises(QueryError):
            save_workload([], tmp_path / "x.npz")

    def test_missing_file(self, tmp_path):
        with pytest.raises(QueryError, match="not found"):
            load_workload(tmp_path / "nope.npz")

    def test_foreign_archive_rejected(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, unrelated=np.arange(4))
        with pytest.raises(QueryError, match="not a repro workload"):
            load_workload(path)


class TestHotspotWorkloads:
    """Prefix stability of hotspot traffic and the drifting generator."""

    UNIVERSE = Box((0.0,) * 3, (1000.0,) * 3)

    def test_hotspot_workload_is_prefix_stable(self):
        # Sweeping the query count must not change the earlier queries:
        # each query draws from its own (seed, k) stream.
        short = hotspot_workload(self.UNIVERSE, 25, seed=11)
        long = hotspot_workload(self.UNIVERSE, 100, seed=11)
        assert all(a.window == b.window for a, b in zip(short, long))

    def test_hotspot_workload_concentrates_in_one_region(self):
        qs = hotspot_workload(
            self.UNIVERSE, 200, hotspot_fraction=1.0, hotspot_volume=0.01,
            seed=5,
        )
        centers = np.array([(q.lo + q.hi) / 2 for q in qs])
        spans = centers.max(axis=0) - centers.min(axis=0)
        hot_side = 1000.0 * 0.01 ** (1 / 3)
        assert np.all(spans <= hot_side + 1e-9)

    def test_drifting_workload_shapes_and_determinism(self):
        ops = drifting_hotspot_workload(
            self.UNIVERSE, n_ops=90, phases=3, insert_every=3,
            insert_batch=4, seed=9,
        )
        assert len(ops) == 90
        assert [o.seq for o in ops] == list(range(90))
        kinds = [o.kind for o in ops]
        assert kinds.count("insert") == 30
        again = drifting_hotspot_workload(
            self.UNIVERSE, n_ops=90, phases=3, insert_every=3,
            insert_batch=4, seed=9,
        )
        for a, b in zip(ops, again):
            assert a.kind == b.kind
            if a.kind == "query":
                assert a.query.window == b.query.window
            else:
                assert np.array_equal(a.lo, b.lo) and np.array_equal(a.hi, b.hi)

    def test_drifting_workload_phases_move_the_hot_region(self):
        ops = drifting_hotspot_workload(
            self.UNIVERSE, n_ops=150, phases=3, hotspot_fraction=1.0,
            hotspot_volume=0.01, seed=4,
        )
        per_phase = 50
        means = []
        for p in range(3):
            centers = np.array(
                [(o.query.lo + o.query.hi) / 2 for o in ops[p * per_phase:(p + 1) * per_phase]]
            )
            means.append(centers.mean(axis=0))
        assert not np.allclose(means[0], means[1], atol=1.0)
        assert not np.allclose(means[1], means[2], atol=1.0)

    def test_drifting_workload_inserts_land_in_hot_region(self):
        ops = drifting_hotspot_workload(
            self.UNIVERSE, n_ops=60, phases=1, hotspot_fraction=1.0,
            hotspot_volume=0.01, insert_every=2, insert_batch=8, seed=2,
        )
        qs = [o for o in ops if o.kind == "query"]
        ins = [o for o in ops if o.kind == "insert"]
        q_centers = np.array([(o.query.lo + o.query.hi) / 2 for o in qs])
        box_centers = np.concatenate([(o.lo + o.hi) / 2 for o in ins])
        hot_side = 1000.0 * 0.01 ** (1 / 3)
        lo = q_centers.min(axis=0) - hot_side
        hi = q_centers.max(axis=0) + hot_side
        assert np.all(box_centers >= lo) and np.all(box_centers <= hi)

    def test_drifting_workload_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            drifting_hotspot_workload(self.UNIVERSE, n_ops=0)
        with pytest.raises(ConfigurationError):
            drifting_hotspot_workload(self.UNIVERSE, phases=0)
        with pytest.raises(ConfigurationError):
            drifting_hotspot_workload(self.UNIVERSE, insert_every=-1)
        with pytest.raises(ConfigurationError):
            drifting_hotspot_workload(self.UNIVERSE, insert_batch=0)
        with pytest.raises(ConfigurationError):
            drifting_hotspot_workload(self.UNIVERSE, hotspot_fraction=1.5)
