"""Unit tests for sequential workloads and workload persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, QueryError
from repro.geometry import Box
from repro.queries import (
    load_workload,
    save_workload,
    sequential_workload,
    uniform_workload,
)


class TestSequentialWorkload:
    UNIVERSE = Box((0.0,) * 3, (1000.0,) * 3)

    def test_count_and_bounds(self):
        qs = sequential_workload(self.UNIVERSE, 20, 1e-3, seed=1)
        assert len(qs) == 20
        for q in qs:
            assert self.UNIVERSE.contains_box(q.window)

    def test_sweep_is_monotone_along_dim(self):
        qs = sequential_workload(self.UNIVERSE, 8, 1e-3, dim=0, seed=2)
        starts = [q.window.lo[0] for q in qs]
        assert starts == sorted(starts), "pre-wrap sweep must move forward"

    def test_disjoint_steps_do_not_overlap(self):
        qs = sequential_workload(self.UNIVERSE, 5, 1e-3, overlap=0.0, seed=3)
        for a, b in zip(qs, qs[1:]):
            assert a.window.hi[0] <= b.window.lo[0] + 1e-9

    def test_half_overlap_shares_half_a_side(self):
        qs = sequential_workload(self.UNIVERSE, 5, 1e-3, overlap=0.5, seed=4)
        side = qs[0].window.hi[0] - qs[0].window.lo[0]
        step = qs[1].window.lo[0] - qs[0].window.lo[0]
        assert step == pytest.approx(side / 2)

    def test_off_sweep_dims_fixed(self):
        qs = sequential_workload(self.UNIVERSE, 10, 1e-3, dim=1, seed=5)
        assert len({q.window.lo[0] for q in qs}) == 1
        assert len({q.window.lo[2] for q in qs}) == 1
        assert len({q.window.lo[1] for q in qs}) == 10

    def test_long_sweep_wraps_around(self):
        qs = sequential_workload(self.UNIVERSE, 300, 1e-3, seed=6)
        starts = [q.window.lo[0] for q in qs]
        assert min(starts) < 100.0 and max(starts) > 800.0
        assert starts != sorted(starts), "a long sweep must wrap"

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            sequential_workload(self.UNIVERSE, 0)
        with pytest.raises(ConfigurationError):
            sequential_workload(self.UNIVERSE, 5, overlap=1.0)
        with pytest.raises(ConfigurationError):
            sequential_workload(self.UNIVERSE, 5, dim=3)


class TestWorkloadIO:
    def test_round_trip(self, tmp_path):
        universe = Box((0.0,) * 3, (100.0,) * 3)
        qs = uniform_workload(universe, 12, 1e-2, seed=7)
        path = save_workload(qs, tmp_path / "wl")
        assert path.suffix == ".npz"
        loaded = load_workload(path)
        assert len(loaded) == 12
        for a, b in zip(qs, loaded):
            assert a.window == b.window
            assert a.seq == b.seq

    def test_empty_workload_rejected(self, tmp_path):
        with pytest.raises(QueryError):
            save_workload([], tmp_path / "x.npz")

    def test_missing_file(self, tmp_path):
        with pytest.raises(QueryError, match="not found"):
            load_workload(tmp_path / "nope.npz")

    def test_foreign_archive_rejected(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, unrelated=np.arange(4))
        with pytest.raises(QueryError, match="not a repro workload"):
            load_workload(path)
