"""Unit tests for the Z-order substrate: codes and range decomposition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.sfc import (
    ZGrid,
    adaptive_min_size,
    morton_decode,
    morton_encode,
    zrange_decompose,
)
from repro.errors import ConfigurationError, GeometryError
from repro.geometry import Box


class TestMortonCodes:
    def test_known_2d_codes(self):
        # With dim 0 most significant per bit group:
        # (0,0)->0, (0,1)->1, (1,0)->2, (1,1)->3 at 1 bit.
        cells = np.array([[0, 0], [0, 1], [1, 0], [1, 1]])
        codes = morton_encode(cells, bits=1)
        assert codes.tolist() == [0, 1, 2, 3]

    def test_known_2d_codes_two_bits(self):
        # Cell (2, 1) = binary x=10, y=01 -> interleave (x1 y1 x0 y0) = 1001 = 9.
        codes = morton_encode(np.array([[2, 1]]), bits=2)
        assert codes.tolist() == [9]

    def test_round_trip_3d(self):
        rng = np.random.default_rng(1)
        cells = rng.integers(0, 1024, size=(500, 3))
        codes = morton_encode(cells, bits=10)
        back = morton_decode(codes, ndim=3, bits=10)
        assert np.array_equal(back, cells)

    def test_codes_unique_per_cell(self):
        cells = np.array([[x, y] for x in range(8) for y in range(8)])
        codes = morton_encode(cells, bits=3)
        assert len(set(codes.tolist())) == 64
        assert codes.max() == 63

    def test_locality_of_consecutive_codes(self):
        # Decoding consecutive codes yields cells that are close: the curve
        # step distance is 1 in exactly one dimension half the time.
        codes = np.arange(64, dtype=np.uint64)
        cells = morton_decode(codes, ndim=2, bits=3)
        steps = np.abs(np.diff(cells, axis=0)).sum(axis=1)
        assert np.median(steps) <= 2

    def test_rejects_out_of_range_cells(self):
        with pytest.raises(GeometryError):
            morton_encode(np.array([[1024, 0, 0]]), bits=10)
        with pytest.raises(GeometryError):
            morton_encode(np.array([[-1, 0]]), bits=10)

    def test_rejects_code_overflow(self):
        with pytest.raises(ConfigurationError):
            morton_encode(np.zeros((1, 3), dtype=int), bits=22)


class TestZGrid:
    def test_cells_of_corners(self):
        grid = ZGrid(Box((0.0, 0.0), (100.0, 100.0)), bits=4)
        cells = grid.cells_of(np.array([[0.0, 0.0], [99.9999, 99.9999]]))
        assert cells[0].tolist() == [0, 0]
        assert cells[1].tolist() == [15, 15]

    def test_out_of_universe_clamped(self):
        grid = ZGrid(Box((0.0, 0.0), (10.0, 10.0)), bits=3)
        cells = grid.cells_of(np.array([[-5.0, 20.0]]))
        assert cells[0].tolist() == [0, 7]

    def test_codes_of_matches_encode(self):
        grid = ZGrid(Box((0.0, 0.0), (8.0, 8.0)), bits=3)
        pts = np.array([[1.5, 6.5]])
        assert grid.codes_of(pts)[0] == morton_encode(grid.cells_of(pts), 3)[0]

    def test_rejects_degenerate_universe(self):
        with pytest.raises(GeometryError):
            ZGrid(Box((0.0, 0.0), (0.0, 10.0)), bits=3)


class TestDecomposition:
    def decode_interval_cells(self, intervals, ndim, bits):
        cells = []
        for lo, hi in intervals:
            codes = np.arange(lo, hi + 1, dtype=np.uint64)
            cells.append(morton_decode(codes, ndim, bits))
        return np.concatenate(cells)

    def test_exact_cover_small_window(self):
        q_lo = np.array([2, 3])
        q_hi = np.array([5, 6])
        intervals = zrange_decompose(q_lo, q_hi, ndim=2, bits=3)
        cells = self.decode_interval_cells(intervals, 2, 3)
        expected = {(x, y) for x in range(2, 6) for y in range(3, 7)}
        assert {tuple(c) for c in cells} == expected

    def test_intervals_disjoint_and_sorted(self):
        intervals = zrange_decompose(np.array([1, 1]), np.array([6, 6]), 2, 3)
        for (a_lo, a_hi), (b_lo, b_hi) in zip(intervals, intervals[1:]):
            assert a_hi < b_lo, "intervals must be disjoint and ordered"
            assert a_hi >= a_lo

    def test_full_space_is_one_interval(self):
        intervals = zrange_decompose(np.array([0, 0]), np.array([7, 7]), 2, 3)
        assert intervals == [(0, 63)]

    def test_single_cell(self):
        intervals = zrange_decompose(np.array([3, 5]), np.array([3, 5]), 2, 3)
        assert len(intervals) == 1
        lo, hi = intervals[0]
        assert lo == hi
        assert morton_decode(np.array([lo], dtype=np.uint64), 2, 3)[0].tolist() == [3, 5]

    def test_coarsening_is_superset(self):
        q_lo = np.array([3, 3])
        q_hi = np.array([12, 12])
        exact = zrange_decompose(q_lo, q_hi, 2, 4, min_size=1)
        coarse = zrange_decompose(q_lo, q_hi, 2, 4, min_size=4)
        exact_cells = {tuple(c) for c in self.decode_interval_cells(exact, 2, 4)}
        coarse_cells = {tuple(c) for c in self.decode_interval_cells(coarse, 2, 4)}
        assert exact_cells <= coarse_cells, "coarsening may only add cells"
        assert len(coarse) <= len(exact)

    def test_3d_cover(self):
        q_lo = np.array([1, 2, 3])
        q_hi = np.array([3, 4, 5])
        intervals = zrange_decompose(q_lo, q_hi, 3, 3)
        cells = self.decode_interval_cells(intervals, 3, 3)
        expected = {
            (x, y, z)
            for x in range(1, 4)
            for y in range(2, 5)
            for z in range(3, 6)
        }
        assert {tuple(c) for c in cells} == expected

    def test_rejects_inverted_window(self):
        with pytest.raises(GeometryError):
            zrange_decompose(np.array([5, 5]), np.array([1, 1]), 2, 3)

    def test_rejects_bad_min_size(self):
        with pytest.raises(ConfigurationError):
            zrange_decompose(np.array([0, 0]), np.array([1, 1]), 2, 3, min_size=0)


class TestAdaptiveMinSize:
    def test_small_window_full_resolution(self):
        assert adaptive_min_size(np.array([0, 0]), np.array([10, 10])) == 1

    def test_large_window_coarsens(self):
        size = adaptive_min_size(np.array([0, 0, 0]), np.array([511, 511, 511]))
        assert size >= 32
        assert size & (size - 1) == 0, "must be a power of two"

    def test_monotone_in_span(self):
        sizes = [
            adaptive_min_size(np.array([0]), np.array([span]))
            for span in (1, 10, 100, 1000)
        ]
        assert sizes == sorted(sizes)
