"""Unit tests for the R-Tree baseline (STR bulk load + Guttman insertion)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines.rtree import (
    GuttmanRTree,
    RTreeIndex,
    build_str_rtree,
    str_pack,
)
from repro.datasets import BoxStore, make_uniform
from repro.errors import ConfigurationError, QueryError
from repro.geometry import Box
from repro.queries import RangeQuery, uniform_workload


class TestStrPack:
    def test_runs_cover_all_rows_once(self):
        ds = make_uniform(1_000, seed=1)
        runs = str_pack(ds.store.lo, ds.store.hi, 60)
        all_rows = np.concatenate(runs)
        assert sorted(all_rows.tolist()) == list(range(1_000))

    def test_run_sizes_bounded(self):
        ds = make_uniform(1_000, seed=2)
        runs = str_pack(ds.store.lo, ds.store.hi, 60)
        assert all(r.size <= 60 for r in runs)
        assert len(runs) >= math.ceil(1_000 / 60)

    def test_small_input_single_run(self):
        ds = make_uniform(10, seed=3)
        runs = str_pack(ds.store.lo, ds.store.hi, 60)
        assert len(runs) == 1

    def test_rejects_zero_capacity(self):
        ds = make_uniform(10, seed=3)
        with pytest.raises(ConfigurationError):
            str_pack(ds.store.lo, ds.store.hi, 0)

    def test_spatial_locality_of_runs(self):
        # STR tiles should have much smaller MBR volume than random groups.
        ds = make_uniform(2_000, seed=4)
        runs = str_pack(ds.store.lo, ds.store.hi, 50)

        def total_volume(groups):
            return sum(
                float(
                    np.prod(
                        ds.store.hi[g].max(axis=0) - ds.store.lo[g].min(axis=0)
                    )
                )
                for g in groups
            )

        rng = np.random.default_rng(0)
        perm = rng.permutation(2_000)
        random_groups = [perm[i : i + 50] for i in range(0, 2_000, 50)]
        assert total_volume(runs) < total_volume(random_groups) / 10


class TestStrTree:
    def test_structure(self):
        ds = make_uniform(5_000, seed=5)
        root = build_str_rtree(ds.store, capacity=60)
        assert not root.is_leaf
        assert root.height() >= 2

    def test_root_mbr_covers_dataset(self):
        ds = make_uniform(1_000, seed=6)
        root = build_str_rtree(ds.store, capacity=60)
        bounds = ds.store.bounds()
        assert np.allclose(root.lo, bounds.lo)
        assert np.allclose(root.hi, bounds.hi)

    def test_parent_mbrs_cover_children(self):
        ds = make_uniform(2_000, seed=7)
        root = build_str_rtree(ds.store, capacity=30)
        stack = [root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                assert np.all(ds.store.lo[node.rows] >= node.lo - 1e-12)
                assert np.all(ds.store.hi[node.rows] <= node.hi + 1e-12)
            else:
                for child in node.children:
                    assert np.all(child.lo >= node.lo - 1e-12)
                    assert np.all(child.hi <= node.hi + 1e-12)
                    stack.append(child)

    def test_fanout_bounded(self):
        ds = make_uniform(3_000, seed=8)
        root = build_str_rtree(ds.store, capacity=25)
        stack = [root]
        while stack:
            node = stack.pop()
            assert node.fanout <= 25
            if not node.is_leaf:
                stack.extend(node.children)

    def test_leaf_count(self):
        # Slab rounding makes STR produce slightly more than ceil(n/c)
        # leaves (3 x 2 x 2 = 12 here), never fewer and never tiny shards.
        ds = make_uniform(600, seed=9)
        root = build_str_rtree(ds.store, capacity=60)
        leaves = 0
        stack = [root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                leaves += 1
            else:
                stack.extend(node.children)
        assert math.ceil(600 / 60) <= leaves <= 2 * math.ceil(600 / 60)


class TestRTreeIndex:
    def test_query_before_build_raises(self):
        ds = make_uniform(100, seed=10)
        idx = RTreeIndex(ds.store)
        with pytest.raises(QueryError):
            idx.query(RangeQuery(Box.unit(3)))

    def test_build_idempotent(self):
        ds = make_uniform(100, seed=10)
        idx = RTreeIndex(ds.store)
        idx.build()
        root = idx.root
        idx.build()
        assert idx.root is root

    def test_rejects_unknown_method(self):
        ds = make_uniform(10, seed=1)
        with pytest.raises(ConfigurationError):
            RTreeIndex(ds.store, method="bogus")

    def test_rejects_tiny_capacity(self):
        ds = make_uniform(10, seed=1)
        with pytest.raises(ConfigurationError):
            RTreeIndex(ds.store, capacity=1)

    def test_counts_objects_tested(self):
        ds = make_uniform(1_000, seed=11)
        idx = RTreeIndex(ds.store)
        idx.build()
        q = uniform_workload(ds.universe, 1, 1e-2, seed=12)[0]
        idx.query(q)
        assert 0 < idx.stats.objects_tested <= 1_000
        assert idx.stats.nodes_visited >= 1

    def test_memory_accounting(self):
        ds = make_uniform(500, seed=13)
        idx = RTreeIndex(ds.store)
        assert idx.memory_bytes() == 0
        idx.build()
        assert idx.memory_bytes() > 0


class TestGuttman:
    def test_insertion_produces_valid_tree(self):
        ds = make_uniform(400, seed=14)
        tree = GuttmanRTree(ds.store, capacity=16)
        root = tree.insert_all()
        # Every row present exactly once.
        rows = []
        stack = [root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                rows.extend(node.rows.tolist())
                assert node.rows.size <= 16
            else:
                assert len(node.children) <= 16
                for child in node.children:
                    assert np.all(child.lo >= node.lo - 1e-12)
                    assert np.all(child.hi <= node.hi + 1e-12)
                    stack.append(child)
        assert sorted(rows) == list(range(400))

    def test_capacity_validation(self):
        ds = make_uniform(10, seed=1)
        with pytest.raises(ConfigurationError):
            GuttmanRTree(ds.store, capacity=1)

    def test_guttman_vs_str_same_results(self):
        ds = make_uniform(800, seed=15)
        a = RTreeIndex(ds.store, capacity=20, method="str")
        b = RTreeIndex(ds.store, capacity=20, method="guttman")
        a.build()
        b.build()
        for q in uniform_workload(ds.universe, 20, 1e-2, seed=16):
            assert np.array_equal(np.sort(a.query(q)), np.sort(b.query(q)))

    def test_str_builds_faster_than_guttman(self):
        # The paper's stated reason for bulk loading: it "decreases
        # pre-processing time compared to the R-Tree built by inserting
        # one object at a time" (Section 6.1).  The gap is orders of
        # magnitude, so a direct comparison is safe.
        import time

        ds = make_uniform(1_500, seed=17)
        a = RTreeIndex(ds.store, capacity=30, method="str")
        b = RTreeIndex(ds.store, capacity=30, method="guttman")
        t0 = time.perf_counter()
        a.build()
        t_str = time.perf_counter() - t0
        t0 = time.perf_counter()
        b.build()
        t_guttman = time.perf_counter() - t0
        assert t_str < t_guttman


class TestDeleteCondensing:
    """Deletes re-tighten leaf MBRs and prune dead structure."""

    def _outlier_store(self, n=400, seed=21):
        rng = np.random.default_rng(seed)
        lo = rng.uniform(0, 100, size=(n, 2))
        hi = lo + rng.uniform(0, 3, size=(n, 2))
        lo[0] = [900.0, 900.0]
        hi[0] = [901.0, 901.0]
        return BoxStore(lo, hi)

    def test_root_mbr_shrinks_after_outlier_delete(self):
        index = RTreeIndex(self._outlier_store(), capacity=8)
        index.build()
        assert index.root.hi[0] > 900
        index.delete(np.array([0]))
        assert index.root.hi[0] < 200

    def test_post_delete_queries_skip_dead_space(self):
        index = RTreeIndex(self._outlier_store(), capacity=8)
        index.build()
        index.delete(np.array([0]))
        before = index.stats.objects_tested
        dead = RangeQuery(Box((880.0, 880.0), (950.0, 950.0)), seq=0)
        assert index.query(dead).size == 0
        assert index.stats.objects_tested == before

    def test_leaves_drop_dead_rows(self):
        store = self._outlier_store()
        index = RTreeIndex(store, capacity=8)
        index.build()
        victims = store.ids[store.live_rows()][:50]
        index.delete(victims)

        def live_leaf_rows(node):
            if node.is_leaf:
                return node.rows.tolist()
            return [r for c in node.children for r in live_leaf_rows(c)]

        rows = live_leaf_rows(index.root)
        assert len(rows) == store.live_count
        assert len(set(rows)) == len(rows)
        assert not np.isin(rows, np.flatnonzero(~store.live)).any()

    def test_parent_mbrs_stay_covering_after_deletes(self):
        store = self._outlier_store()
        index = RTreeIndex(store, capacity=8)
        index.build()
        rng = np.random.default_rng(5)
        live = store.ids[store.live_rows()]
        index.delete(rng.choice(live, size=150, replace=False))

        def check(node):
            if node.is_leaf:
                assert np.all(store.lo[node.rows] >= node.lo - 1e-9)
                assert np.all(store.hi[node.rows] <= node.hi + 1e-9)
                return
            for child in node.children:
                assert np.all(child.lo >= node.lo - 1e-9)
                assert np.all(child.hi <= node.hi + 1e-9)
                check(child)

        check(index.root)

    def test_deleting_everything_empties_the_tree(self):
        store = self._outlier_store(n=60)
        index = RTreeIndex(store, capacity=4)
        index.build()
        index.delete(store.ids[store.live_rows()])
        assert index.root is None
        assert index.height() == 0
        full = RangeQuery(Box((-10.0, -10.0), (1000.0, 1000.0)), seq=0)
        assert index.query(full).size == 0
        # The tree restarts from scratch on the next insert.
        new = index.insert(np.array([[1.0, 1.0]]), np.array([[2.0, 2.0]]))
        assert np.array_equal(np.sort(index.query(full)), np.sort(new))

    def test_guttman_inserted_rows_condense_too(self):
        ds = make_uniform(300, seed=22)
        index = RTreeIndex(ds.store, capacity=8)
        index.build()
        new = index.insert(
            np.array([[20000.0, 20000.0, 20000.0]]),
            np.array([[20001.0, 20001.0, 20001.0]]),
        )
        assert index.root.hi[0] > 10000
        index.delete(new)
        assert index.root.hi[0] < 11000
