"""The IndexStats coverage guarantee: snapshot/delta round-trips.

``as_dict`` / ``snapshot`` / ``delta_since`` iterate the dataclass
fields, so every counter — including ones added later — participates in
snapshots, deltas, and the telemetry ``stats.*`` flow automatically.
These tests make that guarantee executable: they enumerate the fields
programmatically instead of hard-coding names, so a new counter is
covered the moment it becomes a field (and can only escape by not being
a field, which ``reset`` parity would catch).
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields

import pytest

from repro.index.base import IndexStats
from repro.telemetry import MetricsRegistry, record_stats_delta, stats_metric

FIELD_NAMES = [f.name for f in dataclass_fields(IndexStats)]


def _filled(offset: int = 0) -> IndexStats:
    """An IndexStats with a distinct nonzero value in every field."""
    stats = IndexStats()
    for i, name in enumerate(FIELD_NAMES):
        setattr(stats, name, offset + 10 * (i + 1))
    return stats


class TestCoverageGuarantee:
    def test_every_counter_is_a_field(self):
        # The guarantee's precondition: all integer counters on the
        # class are dataclass fields (an attribute assigned only in
        # __init__/reset would silently escape snapshots).
        stats = _filled()
        plain_attrs = {
            k for k, v in vars(stats).items() if isinstance(v, int)
        }
        assert plain_attrs == set(FIELD_NAMES)

    def test_as_dict_covers_all_fields_in_order(self):
        stats = _filled()
        d = stats.as_dict()
        assert list(d) == FIELD_NAMES
        assert all(d[name] == getattr(stats, name) for name in FIELD_NAMES)

    def test_snapshot_is_deep_and_complete(self):
        stats = _filled()
        snap = stats.snapshot()
        assert snap.as_dict() == stats.as_dict()
        stats.queries += 99  # snapshot must be independent
        assert snap.queries == stats.queries - 99

    def test_delta_roundtrip_every_field(self):
        before = _filled()
        snap = before.snapshot()
        after = _filled(offset=7)  # +7 in every field
        delta = after.delta_since(snap)
        assert delta.as_dict() == {name: 7 for name in FIELD_NAMES}

    def test_delta_of_identical_snapshots_is_zero(self):
        stats = _filled()
        delta = stats.delta_since(stats.snapshot())
        assert delta.as_dict() == {name: 0 for name in FIELD_NAMES}

    def test_reset_covers_all_fields(self):
        stats = _filled()
        stats.reset()
        assert stats.as_dict() == {name: 0 for name in FIELD_NAMES}

    @pytest.mark.parametrize("name", ["rebalances", "rows_migrated"])
    def test_sharding_counters_flow_through_deltas(self, name):
        # The two counters PR 4 added ride the same machinery — the
        # explicit spot-check the coverage guarantee points at.
        stats = IndexStats()
        before = stats.snapshot()
        setattr(stats, name, 5)
        assert getattr(stats.delta_since(before), name) == 5


class TestTelemetryFlow:
    def test_record_stats_delta_covers_every_nonzero_field(self):
        reg = MetricsRegistry()
        record_stats_delta(reg, _filled())
        counters = reg.counters()
        for i, name in enumerate(FIELD_NAMES):
            assert counters[stats_metric(name)] == 10 * (i + 1)

    def test_record_stats_delta_skips_zeros(self):
        reg = MetricsRegistry()
        delta = IndexStats(queries=3)
        record_stats_delta(reg, delta)
        assert reg.counters() == {stats_metric("queries"): 3}

    def test_repeated_deltas_accumulate(self):
        reg = MetricsRegistry()
        record_stats_delta(reg, IndexStats(cracks=2))
        record_stats_delta(reg, IndexStats(cracks=5))
        assert reg.counters()[stats_metric("cracks")] == 7

    def test_metrics_vocabulary_tracks_fields(self):
        # naming.METRICS generates stats.* from the dataclass fields;
        # a field rename or addition must show up there (and then in
        # docs/OBSERVABILITY.md, enforced by tools/check_docs.py).
        from repro.telemetry.naming import METRICS

        for name in FIELD_NAMES:
            assert stats_metric(name) in METRICS
