"""Edge cases: non-cubic universes and anisotropic data.

The paper's universes are cubes, but nothing in the algorithms requires
that; these tests pin down correct behaviour for rectangular spaces
(different extent per dimension), which exercise the ZGrid per-dimension
scaling, grid cell shapes, and QUASII threshold logic independently of the
cubic assumption.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    MosaicIndex,
    RTreeIndex,
    SFCIndex,
    SFCrackerIndex,
    ScanIndex,
    UniformGridIndex,
)
from repro.baselines.sfc import ZGrid
from repro.core import QuasiiIndex
from repro.datasets import BoxStore
from repro.geometry import Box
from repro.queries import RangeQuery, uniform_workload


@pytest.fixture(scope="module")
def slab_dataset():
    """A flat slab: x spans 10,000 units, y spans 100, z spans 10."""
    rng = np.random.default_rng(91)
    n = 3_000
    lo = rng.uniform([0, 0, 0], [10_000, 100, 10], size=(n, 3))
    hi = lo + rng.uniform(0, [50, 5, 1], size=(n, 3))
    universe = Box((0.0, 0.0, 0.0), (10_000.0, 100.0, 10.0))
    return BoxStore(lo, hi), universe


def slab_queries(universe, n=20, seed=92):
    return uniform_workload(universe, n, 1e-2, seed=seed)


class TestZGridAnisotropic:
    def test_per_dimension_scaling(self):
        universe = Box((0.0, 0.0), (1000.0, 10.0))
        grid = ZGrid(universe, bits=4)
        cells = grid.cells_of(np.array([[500.0, 5.0]]))
        # Both coordinates sit at the middle cell despite a 100x extent gap.
        assert cells[0].tolist() == [8, 8]

    def test_full_extent_maps_to_full_range(self):
        universe = Box((-50.0, 0.0), (50.0, 1.0))
        grid = ZGrid(universe, bits=3)
        cells = grid.cells_of(np.array([[-50.0, 0.0], [49.999, 0.999]]))
        assert cells[0].tolist() == [0, 0]
        assert cells[1].tolist() == [7, 7]


class TestIndexesOnSlab:
    def test_all_indexes_agree(self, slab_dataset):
        store, universe = slab_dataset
        scan = ScanIndex(store)
        indexes = [
            QuasiiIndex(store.copy(), tau=20),
            RTreeIndex(store.copy(), capacity=20),
            UniformGridIndex(store.copy(), universe, 8),
            SFCIndex(store.copy(), universe),
            SFCrackerIndex(store.copy(), universe),
            MosaicIndex(store.copy(), universe, capacity=20),
        ]
        for idx in indexes:
            idx.build()
        for q in slab_queries(universe):
            expect = np.sort(scan.query(q))
            for idx in indexes:
                assert np.array_equal(np.sort(idx.query(q)), expect), (
                    f"{idx.name} diverged on anisotropic data"
                )

    def test_quasii_invariants_on_slab(self, slab_dataset):
        store, universe = slab_dataset
        index = QuasiiIndex(store.copy(), tau=25)
        for q in slab_queries(universe, n=30, seed=93):
            index.query(q)
        index.validate_structure()

    def test_degenerate_query_plane(self, slab_dataset):
        store, universe = slab_dataset
        index = QuasiiIndex(store.copy())
        scan = ScanIndex(store)
        window = Box((5000.0, 0.0, 0.0), (5000.0, 100.0, 10.0))
        q = RangeQuery(window)
        assert np.array_equal(np.sort(index.query(q)), np.sort(scan.query(q)))
