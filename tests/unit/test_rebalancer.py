"""Unit tests for the rebalancing + maintenance subsystem.

Covers the :class:`WorkloadProfile` accounting, the
:class:`Rebalancer`'s drift detection and split/merge mechanics
(including the post-migration routing-MBB re-derivation the insert
router depends on), the engine's migration verbs, and the
:class:`MaintenancePolicy` / :class:`MaintenanceScheduler` threading
through both executors.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import ScanIndex
from repro.core import QuasiiIndex
from repro.datasets import BoxStore, make_uniform
from repro.errors import ConfigurationError
from repro.geometry import Box
from repro.queries import RangeQuery, drifting_hotspot_workload, uniform_workload
from repro.sharding import (
    MaintenancePolicy,
    MaintenanceScheduler,
    QueryExecutor,
    Rebalancer,
    ShardedIndex,
    WorkloadProfile,
)
from repro.updates import run_mixed_workload


def _query_at(center, side=4.0, seq=0):
    center = np.asarray(center, dtype=np.float64)
    return RangeQuery(
        Box(tuple(center - side / 2), tuple(center + side / 2)), seq=seq
    )


def _grid_store(n_side=10, spacing=10.0, ndim=2) -> BoxStore:
    """A deterministic grid of small boxes covering [0, n*spacing)^d."""
    axes = [np.arange(n_side) * spacing for _ in range(ndim)]
    centers = np.stack(np.meshgrid(*axes), axis=-1).reshape(-1, ndim) + spacing / 2
    return BoxStore(centers - 1.0, centers + 1.0)


class TestWorkloadProfile:
    def test_records_and_derives_centroids(self):
        profile = WorkloadProfile(window=4)
        for i in range(6):
            profile.record(_query_at([10.0 * i, 0.0]))
        assert profile.queries_seen == 6
        pts = profile.centroids()
        assert pts.shape == (4, 2)  # bounded by the window
        assert pts[-1][0] == pytest.approx(50.0)

    def test_centroids_within_filters_by_box(self):
        profile = WorkloadProfile()
        profile.record(_query_at([5.0, 5.0]))
        profile.record(_query_at([95.0, 95.0]))
        inside = profile.centroids_within(
            np.array([0.0, 0.0]), np.array([10.0, 10.0])
        )
        assert inside.shape == (1, 2)

    def test_recent_windows_limit(self):
        profile = WorkloadProfile(window=8)
        for i in range(5):
            profile.record(_query_at([float(i), 0.0], seq=i))
        assert len(profile.recent_windows()) == 5
        assert len(profile.recent_windows(2)) == 2
        # Newest last.
        assert profile.recent_windows(1)[0][0][0] == pytest.approx(4.0 - 2.0)

    def test_shard_loads_are_deltas_since_baseline(self):
        engine = ShardedIndex(_grid_store(), n_shards=2)
        engine.build()
        for i in range(4):
            engine.query(_query_at([5.0, 5.0], seq=i))
        loads = engine.profile.shard_loads(engine.shards)
        assert sum(l.queries for l in loads) == 4
        engine.profile.rebaseline(engine.shards)
        loads = engine.profile.shard_loads(engine.shards)
        assert sum(l.queries for l in loads) == 0
        assert engine.profile.queries_seen == 0

    def test_query_skew_measures_concentration(self):
        engine = ShardedIndex(_grid_store(), n_shards=4)
        engine.build()
        assert engine.profile.query_skew(engine.shards) == 1.0
        for i in range(10):
            engine.query(_query_at([5.0, 5.0], seq=i))  # one corner shard
        assert engine.profile.query_skew(engine.shards) > 2.0

    def test_shard_load_derived_properties(self):
        engine = ShardedIndex(_grid_store(), n_shards=1)
        engine.build()
        for i in range(3):
            engine.query(_query_at([5.0, 5.0], seq=i))
        (load,) = engine.profile.shard_loads(engine.shards)
        assert load.objects_tested >= load.results > 0
        assert load.wasted_rows == load.objects_tested - load.results
        assert 0.0 < load.selectivity <= 1.0
        assert load.dead_fraction == 0.0

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            WorkloadProfile(window=0)


class TestRebalancer:
    def test_rejects_bad_thresholds(self):
        for kwargs in (
            dict(max_balance=0.9),
            dict(max_query_skew=0.5),
            dict(min_queries=0),
            dict(warmup=-1),
        ):
            with pytest.raises(ConfigurationError):
                Rebalancer(**kwargs)

    def test_no_drift_without_enough_profiled_queries(self):
        engine = ShardedIndex(_grid_store(), n_shards=2)
        engine.build()
        rb = Rebalancer(min_queries=50)
        assert rb.drift_reason(engine) is None
        assert rb.maybe_rebalance(engine) is None

    def test_single_shard_never_rebalances(self):
        engine = ShardedIndex(_grid_store(), n_shards=1)
        engine.build()
        rb = Rebalancer(min_queries=1)
        for i in range(5):
            engine.query(_query_at([5.0, 5.0], seq=i))
        assert rb.drift_reason(engine) is None
        assert rb.rebalance(engine) is None

    def test_balance_drift_detected_and_fixed(self):
        engine = ShardedIndex(_grid_store(), n_shards=2)
        engine.build()
        for i in range(4):
            engine.query(_query_at([5.0, 5.0], seq=i))
        # Skewed ingestion: pile rows into one corner.
        centers = np.random.default_rng(0).uniform(0, 20, size=(160, 2))
        engine.insert(centers - 0.5, centers + 0.5)
        assert engine.balance_factor() > 1.4
        rb = Rebalancer(max_balance=1.4, max_query_skew=1e9, min_queries=2)
        assert rb.drift_reason(engine) == "balance"
        result = rb.maybe_rebalance(engine)
        assert result is not None and result.reason == "balance"
        assert result.balance_after < result.balance_before
        assert engine.stats.rebalances == 1
        assert engine.stats.rows_migrated == result.rows_migrated > 0
        engine.validate_routing()

    def test_skew_drift_splits_the_hot_traffic(self):
        engine = ShardedIndex(_grid_store(), n_shards=4)
        engine.build()
        for i in range(20):
            engine.query(_query_at([5.0, 5.0], seq=i))
        rb = Rebalancer(max_balance=1e9, max_query_skew=1.5, min_queries=10)
        assert rb.drift_reason(engine) == "skew"
        result = rb.maybe_rebalance(engine)
        assert result is not None and result.reason == "skew"
        engine.validate_routing()

    def test_rebalance_preserves_results_and_mirror(self):
        ds = make_uniform(3_000, seed=3)
        engine = ShardedIndex(ds.store.copy(), n_shards=3)
        engine.build()
        scan = ScanIndex(ds.store.copy())
        queries = uniform_workload(ds.universe, 30, 1e-3, seed=4)
        for q in queries[:15]:
            engine.query(q)
        mirror_fp = engine.store.fingerprint()
        result = Rebalancer(min_queries=1).rebalance(engine)
        assert result is not None
        assert engine.store.fingerprint() == mirror_fp
        for q in queries[15:]:
            assert np.array_equal(np.sort(engine.query(q)), np.sort(scan.query(q)))

    def test_routing_mbbs_rederived_after_migration(self):
        """The satellite bugfix: post-pass insert routing must see MBBs
        derived from the migrated stores, not the pre-pass geometry."""
        engine = ShardedIndex(_grid_store(), n_shards=2)
        engine.build()
        for i in range(6):
            engine.query(_query_at([5.0, 5.0], seq=i))
        Rebalancer(min_queries=1).rebalance(engine)
        stack_lo, stack_hi = engine._mbb_stacks()
        for shard in engine.shards:
            store = shard.store
            rows = store.live_rows()
            assert np.array_equal(stack_lo[shard.sid], shard.mbb_lo)
            assert np.array_equal(stack_hi[shard.sid], shard.mbb_hi)
            if rows.size:
                # Re-derived exactly from the migrated store's live rows.
                assert np.allclose(shard.mbb_lo, store.lo[rows].min(axis=0))
                assert np.allclose(shard.mbb_hi, store.hi[rows].max(axis=0))
        # And routing honors them: a box inside one shard's tile lands
        # on the shard whose MBB covers it.
        ids = engine.insert(np.array([[5.0, 5.0]]), np.array([[6.0, 6.0]]))
        owner = engine.shards[engine.owner_of(int(ids[0]))]
        assert np.all(owner.mbb_lo <= 5.0) and np.all(owner.mbb_hi >= 6.0)

    def test_warmup_refines_rebuilt_shards(self):
        engine = ShardedIndex(_grid_store(20), n_shards=2)
        engine.build()
        for i in range(10):
            engine.query(_query_at([10.0, 10.0], seq=i))
        warm = Rebalancer(min_queries=1, warmup=8)
        warm.rebalance(engine)
        # The replay's cracking shows up in the fleet work roll-up.
        assert engine.stats.cracks > 0

    def test_split_cut_follows_query_centroids(self):
        engine = ShardedIndex(_grid_store(), n_shards=2)
        engine.build()
        # Queries clustered around x ~ 30, spread along dim 0.
        for i, x in enumerate((10.0, 20.0, 30.0, 40.0, 50.0, 60.0)):
            engine.query(_query_at([x, 50.0], seq=i))
        result = Rebalancer(min_queries=1, min_centroids=3).rebalance(engine)
        assert result.split_dim == 0
        assert 10.0 <= result.split_cut <= 60.0


class TestEngineMigrationVerbs:
    def test_flush_updates_forces_pending_rows_into_stores(self):
        engine = ShardedIndex(_grid_store(), n_shards=2)
        engine.build()
        engine.insert(np.array([[1.0, 1.0]]), np.array([[2.0, 2.0]]))
        assert engine.pending_updates() == 1
        assert engine.flush_updates() == 1
        assert engine.pending_updates() == 0
        engine.validate_routing()

    def test_quasii_flush_updates_counts_merges(self):
        store = _grid_store()
        index = QuasiiIndex(store.copy())
        index.build()
        assert index.flush_updates() == 0
        index.insert(np.array([[1.0, 1.0]]), np.array([[2.0, 2.0]]))
        merges_before = index.stats.merges
        assert index.flush_updates() == 1
        assert index.stats.merges == merges_before + 1
        assert index.pending_updates() == 0

    def test_migrate_into_rewrites_ownership_and_expands_mbb(self):
        engine = ShardedIndex(_grid_store(), n_shards=2)
        engine.build()
        source = engine.shards[0].store
        rows = source.live_rows()[:3]
        lo, hi = source.lo[rows].copy(), source.hi[rows].copy()
        ids = source.ids[rows].copy()
        engine.migrate_into(1, lo, hi, ids)
        for obj_id in ids:
            assert engine.owner_of(int(obj_id)) == 1
        assert np.all(engine.shards[1].mbb_lo <= lo.min(axis=0))

    def test_rebuild_shard_recalibrates_work_counters(self):
        engine = ShardedIndex(_grid_store(), n_shards=2)
        engine.build()
        for i in range(5):
            engine.query(_query_at([5.0, 5.0], seq=i))
        tested_before = engine.stats.objects_tested
        shard = engine.shards[0]
        rows = shard.store.live_rows()
        engine.rebuild_shard(
            0, shard.store.lo[rows], shard.store.hi[rows], shard.store.ids[rows]
        )
        engine.sync_shard_work()
        # Discarding the old index's counters must never roll the
        # engine's folded totals backwards.
        assert engine.stats.objects_tested >= tested_before
        engine.validate_routing()

    def test_rebuild_shard_bulk_refines_large_mutable_shards(self):
        engine = ShardedIndex(_grid_store(20), n_shards=2)  # 400 rows
        engine.build()
        shard = engine.shards[0]
        rows = shard.store.live_rows()
        engine.rebuild_shard(
            0, shard.store.lo[rows], shard.store.hi[rows], shard.store.ids[rows]
        )
        rebuilt = engine.shards[0].index
        # The batch went through insert + flush: nothing left pending,
        # and the run was large enough to be STR bulk-loaded (refined).
        assert rebuilt.pending_updates() == 0
        assert rebuilt.stats.merges == 1


class TestMaintenance:
    def test_policy_validation(self):
        for kwargs in (
            dict(check_every=0),
            dict(dead_fraction=1.0),
            dict(max_balance=0.5),
            dict(max_query_skew=0.0),
            dict(min_queries=0),
        ):
            with pytest.raises(ConfigurationError):
                MaintenancePolicy(**kwargs)

    def test_scheduler_rejects_immutable_indexes(self):
        store = _grid_store()
        from repro.baselines import SFCIndex

        index = SFCIndex(store, Box((0.0, 0.0), (100.0, 100.0)))
        with pytest.raises(ConfigurationError):
            MaintenanceScheduler(index)

    def test_cadence_runs_every_check_every_ops(self):
        engine = ShardedIndex(_grid_store(), n_shards=2)
        engine.build()
        sched = MaintenanceScheduler(engine, MaintenancePolicy(check_every=4))
        ticks = [sched.after_ops(1) for _ in range(8)]
        assert ticks == [False] * 3 + [True] + [False] * 3 + [True]
        assert sched.report.checks == 2

    def test_cadence_carries_the_remainder_across_batches(self):
        engine = ShardedIndex(_grid_store(), n_shards=2)
        engine.build()
        sched = MaintenanceScheduler(engine, MaintenancePolicy(check_every=64))
        # One oversized batch runs one check (back-to-back checks would
        # observe identical state) ...
        assert sched.after_ops(1000)
        assert sched.report.checks == 1
        # ... and the remainder carries: 1000 % 64 = 40, so 24 more ops
        # reach the next check boundary.
        assert not sched.after_ops(23)
        assert sched.after_ops(1)
        assert sched.report.checks == 2

    def test_compaction_triggers_on_dead_fraction_for_plain_indexes(self):
        store = _grid_store()
        index = QuasiiIndex(store)
        index.build()
        index.delete(store.ids[store.live_rows()][:60])  # 60% dead
        sched = MaintenanceScheduler(
            index, MaintenancePolicy(check_every=1, dead_fraction=0.5)
        )
        sched.run()
        assert sched.report.compaction_passes == 1
        assert sched.report.rows_reclaimed == 60
        assert store.n_dead == 0

    def test_scheduler_rebalances_sharded_engines(self):
        engine = ShardedIndex(_grid_store(), n_shards=2)
        engine.build()
        sched = MaintenanceScheduler(
            engine,
            MaintenancePolicy(
                check_every=1, max_balance=1.2, max_query_skew=1e9, min_queries=2
            ),
        )
        for i in range(4):
            engine.query(_query_at([5.0, 5.0], seq=i))
        centers = np.random.default_rng(0).uniform(0, 20, size=(160, 2))
        engine.insert(centers - 0.5, centers + 0.5)
        assert sched.after_ops(1)
        assert sched.report.rebalances == 1
        assert sched.report.last_rebalance.reason == "balance"
        assert sched.report.seconds > 0

    def test_rebalance_disabled_policy_never_rebalances(self):
        engine = ShardedIndex(_grid_store(), n_shards=2)
        engine.build()
        sched = MaintenanceScheduler(
            engine,
            MaintenancePolicy(
                check_every=1, rebalance=False, max_balance=1.01, min_queries=1
            ),
        )
        for i in range(4):
            engine.query(_query_at([5.0, 5.0], seq=i))
        sched.run()
        assert sched.report.rebalances == 0

    def test_query_executor_ticks_maintenance(self):
        ds = make_uniform(2_000, seed=5)
        engine = ShardedIndex(ds.store.copy(), n_shards=2)
        policy = MaintenancePolicy(
            check_every=8, max_balance=1.0001, max_query_skew=1e9, min_queries=1
        )
        executor = QueryExecutor(engine, max_workers=1, maintenance=policy)
        queries = uniform_workload(ds.universe, 16, 1e-3, seed=6)
        executor.run(queries)
        assert executor.scheduler is not None
        assert executor.scheduler.report.checks >= 1
        # Without a policy there is no scheduler.
        assert QueryExecutor(engine, max_workers=1).scheduler is None

    def test_mixed_workload_runner_reports_maintenance(self):
        ds = make_uniform(4_000, seed=8)
        engine = ShardedIndex(ds.store.copy(), n_shards=2)
        ops = drifting_hotspot_workload(
            ds.universe, n_ops=80, phases=2, volume_fraction=1e-3,
            insert_every=2, insert_batch=64, seed=10,
        )
        result = run_mixed_workload(
            engine,
            ops,
            maintenance=MaintenancePolicy(
                check_every=8, max_balance=1.1, max_query_skew=1e9, min_queries=4
            ),
        )
        assert result.rebalances >= 1
        assert result.rows_migrated > 0
        assert result.maintenance_seconds > 0
        # Maintained engine still matches the Scan oracle.
        scan = ScanIndex(ds.store.copy())
        oracle = run_mixed_workload(scan, ops)
        assert all(
            np.array_equal(a, b)
            for a, b in zip(result.query_results, oracle.query_results)
        )
