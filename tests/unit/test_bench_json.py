"""BENCH_<verb>.json persistence: schema, validation, CLI, trajectory."""

from __future__ import annotations

import json

import pytest

from repro.bench import cli
from repro.bench.reporting import (
    BENCH_SCHEMA,
    ExperimentReport,
    load_bench_files,
    render_trajectory,
    to_json_dict,
    validate_bench_json,
    write_bench_json,
)


def _report(verb: str = "fig7") -> ExperimentReport:
    report = ExperimentReport(verb, "a test report")
    report.add_table("t", ["a", "b"], [[1, 2.5], ["x", "y"]])
    report.add_note("a note")
    return report


def _soak_metrics(n_windows: int = 3) -> dict:
    return {
        "windows": [
            {
                "start": float(i),
                "end": float(i + 1),
                "counters": {"ops": 10},
                "gauges": {},
                "histograms": {
                    "query.seconds": {
                        "count": 5, "sum": 0.01, "mean": 0.002,
                        "max": 0.004, "p50": 0.002, "p90": 0.003,
                        "p99": 0.001 * (i + 1),
                    }
                },
            }
            for i in range(n_windows)
        ],
        "spans": [
            {"name": "maintenance.compact", "start": 0.5, "seconds": 0.02,
             "window": 0, "attrs": {"rows_reclaimed": 100}},
        ],
    }


class TestSchemaRoundTrip:
    def test_to_json_dict_shape(self):
        doc = to_json_dict(_report(), "smoke", 1.25)
        assert doc["schema"] == BENCH_SCHEMA
        assert doc["verb"] == "fig7"
        assert doc["scale"] == "smoke"
        assert doc["elapsed_seconds"] == 1.25
        assert doc["created_unix"] > 0
        assert doc["tables"][0]["headers"] == ["a", "b"]
        # Cells are stringified exactly as the rendered report prints.
        assert doc["tables"][0]["rows"][0] == ["1", "2.500"]
        assert doc["notes"] == ["a note"]
        assert validate_bench_json(doc) == []

    def test_write_and_load_round_trip(self, tmp_path):
        path = write_bench_json(_report(), tmp_path, "smoke", 2.0)
        assert path.name == "BENCH_fig7.json"
        loaded = load_bench_files(tmp_path)
        assert len(loaded) == 1
        assert loaded[0][0] == path
        assert loaded[0][1] == json.loads(path.read_text())
        assert validate_bench_json(loaded[0][1]) == []

    def test_write_overwrites(self, tmp_path):
        write_bench_json(_report(), tmp_path, "smoke", 1.0)
        write_bench_json(_report(), tmp_path, "tiny", 2.0)
        (path, doc), = load_bench_files(tmp_path)
        assert doc["scale"] == "tiny"

    def test_write_refuses_invalid(self, tmp_path):
        bad = _report("soak")  # soak without windows/spans is invalid
        with pytest.raises(ValueError, match="refusing to persist"):
            write_bench_json(bad, tmp_path, "smoke", 1.0)
        assert load_bench_files(tmp_path) == []

    def test_load_reports_unparseable_files(self, tmp_path):
        (tmp_path / "BENCH_broken.json").write_text("{nope")
        (path, doc), = load_bench_files(tmp_path)
        assert isinstance(doc, str) and doc.startswith("unreadable")


class TestValidator:
    def test_non_dict(self):
        assert validate_bench_json([1, 2]) != []

    @pytest.mark.parametrize("key", [
        "schema", "verb", "scale", "description", "created_unix",
        "elapsed_seconds", "tables", "notes", "metrics",
    ])
    def test_each_field_required(self, key):
        doc = to_json_dict(_report(), "smoke", 1.0)
        del doc[key]
        assert any(key in p for p in validate_bench_json(doc))

    def test_wrong_schema_tag(self):
        doc = to_json_dict(_report(), "smoke", 1.0)
        doc["schema"] = "repro-bench/999"
        assert validate_bench_json(doc)

    def test_row_width_mismatch(self):
        doc = to_json_dict(_report(), "smoke", 1.0)
        doc["tables"][0]["rows"].append(["only-one-cell"])
        assert any("header width" in p for p in validate_bench_json(doc))

    def test_notes_must_be_strings(self):
        doc = to_json_dict(_report(), "smoke", 1.0)
        doc["notes"].append(42)
        assert any("notes" in p for p in validate_bench_json(doc))

    def test_soak_requires_three_windows(self):
        report = _report("soak")
        report.metrics = _soak_metrics(n_windows=2)
        doc = to_json_dict(report, "smoke", 1.0)
        assert any(">= 3" in p for p in validate_bench_json(doc))
        report.metrics = _soak_metrics(n_windows=3)
        assert validate_bench_json(to_json_dict(report, "smoke", 1.0)) == []

    def test_soak_requires_span_list_and_window_keys(self):
        report = _report("soak")
        report.metrics = _soak_metrics()
        del report.metrics["spans"]
        doc = to_json_dict(report, "smoke", 1.0)
        assert any("spans" in p for p in validate_bench_json(doc))
        report.metrics = _soak_metrics()
        del report.metrics["windows"][1]["histograms"]
        doc = to_json_dict(report, "smoke", 1.0)
        assert any("windows[1]" in p for p in validate_bench_json(doc))


class TestTrajectory:
    def test_render_trajectory_rows_and_soak_notes(self):
        soak = _report("soak")
        soak.metrics = _soak_metrics()
        docs = [
            to_json_dict(_report("fig7"), "small", 1.0),
            to_json_dict(soak, "smoke", 4.0),
        ]
        text = render_trajectory(docs)
        assert "fig7" in text and "soak" in text
        # Soak notes surface the p99 range and the slowest span.
        assert "query p99 per window" in text
        assert "maintenance.compact" in text

    def test_render_trajectory_empty(self):
        assert "no BENCH_*.json files found" in render_trajectory([])

    def test_zero_count_windows_excluded_from_p99_note(self):
        soak = _report("soak")
        soak.metrics = _soak_metrics()
        # A flush window with no queries must not drag the range to 0.
        soak.metrics["windows"].append({
            "start": 3.0, "end": 3.01, "counters": {}, "gauges": {},
            "histograms": {"query.seconds": {
                "count": 0, "sum": 0.0, "mean": 0.0, "max": 0.0,
                "p50": 0.0, "p90": 0.0, "p99": 0.0,
            }},
        })
        text = render_trajectory([to_json_dict(soak, "smoke", 4.0)])
        assert "0.00.." not in text


class TestCli:
    @pytest.fixture
    def stub_bench(self, monkeypatch):
        """Replace the experiment registry with one instant stub verb."""
        def run_stub(name, scale):
            assert name == "stub"
            return _report("stub")
        monkeypatch.setattr(cli, "EXPERIMENTS", {"stub": "a stub"})
        monkeypatch.setattr(cli, "run_experiment", run_stub)

    def test_json_out_flag_writes_and_reports(self, stub_bench, tmp_path, capsys):
        rc = cli.main(["stub", "--json-out", str(tmp_path)])
        assert rc == 0
        doc = json.loads((tmp_path / "BENCH_stub.json").read_text())
        assert doc["verb"] == "stub"
        assert doc["scale"] == "small"
        assert "BENCH_stub.json" in capsys.readouterr().out

    def test_smoke_flag_sets_scale(self, stub_bench, tmp_path):
        cli.main(["stub", "--smoke", "--json-out", str(tmp_path)])
        doc = json.loads((tmp_path / "BENCH_stub.json").read_text())
        assert doc["scale"] == "smoke"

    def test_report_verb_validates(self, stub_bench, tmp_path, capsys):
        cli.main(["stub", "--json-out", str(tmp_path)])
        assert cli.main(["report", "--json-out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "trajectory" in out and "stub" in out
        # Corrupt the persisted file: report must now gate with rc 1.
        path = tmp_path / "BENCH_stub.json"
        doc = json.loads(path.read_text())
        doc["schema"] = "wrong"
        path.write_text(json.dumps(doc))
        assert cli.main(["report", "--json-out", str(tmp_path)]) == 1

    def test_report_combined_with_runs(self, stub_bench, tmp_path, capsys):
        rc = cli.main(["stub", "report", "--json-out", str(tmp_path)])
        assert rc == 0
        assert "[report over 1 result file(s)" in capsys.readouterr().out

    def test_unknown_experiment_rc2(self, stub_bench, tmp_path, capsys):
        assert cli.main(["nope", "--json-out", str(tmp_path)]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_default_json_dir_is_repo_root(self, monkeypatch, tmp_path):
        (tmp_path / "pyproject.toml").write_text("")
        nested = tmp_path / "a" / "b"
        nested.mkdir(parents=True)
        monkeypatch.chdir(nested)
        assert cli.default_json_dir() == tmp_path
        monkeypatch.chdir(tmp_path / "a")
        assert cli.default_json_dir() == tmp_path
