"""Unit tests for the uniform grid (both assignment strategies)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.grid import UniformGridIndex
from repro.datasets import BoxStore, make_points, make_uniform
from repro.errors import ConfigurationError, QueryError
from repro.geometry import Box
from repro.queries import RangeQuery, uniform_workload


class TestConfiguration:
    def test_rejects_unknown_assignment(self):
        ds = make_uniform(10, seed=1)
        with pytest.raises(ConfigurationError):
            UniformGridIndex(ds.store, ds.universe, 10, "replicate-everything")

    def test_rejects_zero_partitions(self):
        ds = make_uniform(10, seed=1)
        with pytest.raises(ConfigurationError):
            UniformGridIndex(ds.store, ds.universe, 0)

    def test_rejects_dim_mismatch(self):
        ds = make_uniform(10, seed=1)
        with pytest.raises(ConfigurationError):
            UniformGridIndex(ds.store, Box.unit(2), 10)

    def test_names_reflect_strategy(self):
        ds = make_uniform(10, seed=1)
        assert UniformGridIndex(ds.store, ds.universe, 4).name == "GridQueryExt"
        assert (
            UniformGridIndex(ds.store, ds.universe, 4, "replication").name
            == "GridReplication"
        )

    def test_query_before_build(self):
        ds = make_uniform(10, seed=1)
        idx = UniformGridIndex(ds.store, ds.universe, 4)
        with pytest.raises(QueryError):
            idx.query(RangeQuery(Box.unit(3)))


class TestQueryExtensionAssignment:
    def test_each_object_in_one_cell(self):
        ds = make_uniform(500, seed=2)
        idx = UniformGridIndex(ds.store, ds.universe, 8)
        idx.build()
        assert idx.replication_factor() == pytest.approx(1.0)

    def test_straddling_object_found(self):
        # Object centered in cell A extends into cell B; a query inside B
        # only is answered correctly thanks to window extension.
        lo = np.array([[0.0, 0.0], [9.0, 9.0]])
        hi = np.array([[6.0, 1.0], [10.0, 10.0]])
        store = BoxStore(lo, hi)
        universe = Box((0.0, 0.0), (10.0, 10.0))
        idx = UniformGridIndex(store, universe, 2)  # cells of side 5
        idx.build()
        hits = idx.query(RangeQuery(Box((5.5, 0.0), (6.0, 0.5))))
        assert hits.tolist() == [0]


class TestReplicationAssignment:
    def test_replication_factor_above_one(self):
        ds = make_uniform(2_000, seed=3)
        idx = UniformGridIndex(ds.store, ds.universe, 100, "replication")
        idx.build()
        assert idx.replication_factor() > 1.0

    def test_points_never_replicate(self):
        ds = make_points(500, seed=4)
        idx = UniformGridIndex(ds.store, ds.universe, 16, "replication")
        idx.build()
        assert idx.replication_factor() == pytest.approx(1.0)

    def test_no_duplicate_results(self):
        lo = np.array([[0.0, 0.0]])
        hi = np.array([[10.0, 10.0]])  # spans every cell
        store = BoxStore(lo, hi)
        universe = Box((0.0, 0.0), (10.0, 10.0))
        idx = UniformGridIndex(store, universe, 4, "replication")
        idx.build()
        hits = idx.query(RangeQuery(Box((1.0, 1.0), (9.0, 9.0))))
        assert hits.tolist() == [0], "replication must de-duplicate"

    def test_memory_exceeds_query_extension(self):
        ds = make_uniform(2_000, seed=5)
        rep = UniformGridIndex(ds.store, ds.universe, 100, "replication")
        ext = UniformGridIndex(ds.store, ds.universe, 100, "query_extension")
        rep.build()
        ext.build()
        assert rep.memory_bytes() > ext.memory_bytes()


class TestQuerying:
    def test_both_strategies_match(self):
        ds = make_uniform(1_500, seed=6)
        a = UniformGridIndex(ds.store, ds.universe, 20, "query_extension")
        b = UniformGridIndex(ds.store, ds.universe, 20, "replication")
        a.build()
        b.build()
        for q in uniform_workload(ds.universe, 25, 1e-2, seed=7):
            assert np.array_equal(np.sort(a.query(q)), np.sort(b.query(q)))

    def test_extension_tests_more_objects(self):
        # The 3.1x factor of Section 6.2, qualitatively: query extension
        # must consider more candidates than the exact result size.
        ds = make_uniform(3_000, seed=8)
        idx = UniformGridIndex(ds.store, ds.universe, 30)
        idx.build()
        q = uniform_workload(ds.universe, 1, 1e-3, seed=9)[0]
        hits = idx.query(q)
        assert idx.stats.objects_tested > hits.size

    def test_single_partition_grid(self):
        ds = make_uniform(200, seed=10)
        idx = UniformGridIndex(ds.store, ds.universe, 1)
        idx.build()
        q = uniform_workload(ds.universe, 1, 1e-2, seed=11)[0]
        # Degenerates to a scan but must stay correct.
        assert idx.query(q).size == ds.store.count_range(
            0, ds.n, q.lo, q.hi
        )

    def test_empty_result(self):
        lo = np.array([[0.0, 0.0]])
        store = BoxStore(lo, lo + 1.0)
        idx = UniformGridIndex(store, Box((0.0, 0.0), (100.0, 100.0)), 10)
        idx.build()
        assert idx.query(RangeQuery(Box((50.0, 50.0), (60.0, 60.0)))).size == 0
