"""Unit tests for vectorized geometric predicate kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry import (
    Box,
    boxes_contained_in_window,
    boxes_intersect_window,
    centers_in_window,
    intersects,
    lower_corners_in_window,
    mbr_of,
)


@pytest.fixture
def sample():
    lo = np.array([[0.0, 0.0], [2.0, 2.0], [5.0, 5.0], [1.0, 4.0]])
    hi = np.array([[1.0, 1.0], [3.0, 3.0], [6.0, 6.0], [2.0, 5.0]])
    return lo, hi


class TestIntersectWindow:
    def test_basic_mask(self, sample):
        lo, hi = sample
        mask = boxes_intersect_window(lo, hi, np.array([0.5, 0.5]), np.array([2.5, 2.5]))
        assert mask.tolist() == [True, True, False, False]

    def test_touching_counts(self, sample):
        lo, hi = sample
        mask = boxes_intersect_window(lo, hi, np.array([1.0, 1.0]), np.array([2.0, 2.0]))
        assert mask[0] and mask[1]

    def test_agrees_with_scalar_box(self, sample):
        lo, hi = sample
        window = Box((0.5, 2.5), (5.5, 5.5))
        mask = boxes_intersect_window(
            lo, hi, np.asarray(window.lo), np.asarray(window.hi)
        )
        for i in range(lo.shape[0]):
            assert mask[i] == Box(tuple(lo[i]), tuple(hi[i])).intersects(window)

    def test_bad_window_shape(self, sample):
        lo, hi = sample
        with pytest.raises(GeometryError):
            boxes_intersect_window(lo, hi, np.zeros(3), np.ones(3))

    def test_empty_batch(self):
        lo = np.empty((0, 2))
        mask = boxes_intersect_window(lo, lo, np.zeros(2), np.ones(2))
        assert mask.shape == (0,)


class TestContainment:
    def test_contained(self, sample):
        lo, hi = sample
        mask = boxes_contained_in_window(lo, hi, np.array([0.0, 0.0]), np.array([3.0, 3.0]))
        assert mask.tolist() == [True, True, False, False]

    def test_exact_fit_contained(self):
        lo = np.array([[1.0, 1.0]])
        hi = np.array([[2.0, 2.0]])
        assert boxes_contained_in_window(lo, hi, np.array([1.0, 1.0]), np.array([2.0, 2.0]))[0]


class TestRepresentativePoints:
    def test_lower_corner_mask(self, sample):
        lo, hi = sample
        mask = lower_corners_in_window(lo, np.array([0.0, 0.0]), np.array([2.0, 4.0]))
        assert mask.tolist() == [True, True, False, True]

    def test_centers_mask(self, sample):
        lo, hi = sample
        # Centers: (0.5,0.5), (2.5,2.5), (5.5,5.5), (1.5,4.5)
        mask = centers_in_window(lo, hi, np.array([1.0, 1.0]), np.array([3.0, 5.0]))
        assert mask.tolist() == [False, True, False, True]

    def test_lower_corner_is_subset_of_intersection(self, sample):
        lo, hi = sample
        qlo, qhi = np.array([0.5, 0.5]), np.array([5.5, 5.5])
        corners = lower_corners_in_window(lo, qlo, qhi)
        inter = boxes_intersect_window(lo, hi, qlo, qhi)
        assert np.all(~corners | inter), "corner-in implies intersecting"


class TestScalarHelpers:
    def test_intersects_scalar(self):
        assert intersects([0, 0], [1, 1], [1, 1], [2, 2])
        assert not intersects([0, 0], [1, 1], [1.1, 0], [2, 1])

    def test_mbr_of(self, sample):
        lo, hi = sample
        m = mbr_of(lo, hi)
        assert m == Box((0.0, 0.0), (6.0, 6.0))

    def test_mbr_of_empty_raises(self):
        with pytest.raises(GeometryError):
            mbr_of(np.empty((0, 2)), np.empty((0, 2)))
