"""Unit tests for the process-parallel serving tier (``repro.parallel``).

Covers the four layers of the subsystem:

* segments — publish/attach round trips preserve the live multiset,
  views are genuinely zero-copy, destroy unlinks the OS object;
* the wire — query/result codecs across the full predicate/mode
  matrix, including the ``None`` payloads of count-mode results;
* backend resolution — explicit argument vs ``QUASII_EXECUTOR_BACKEND``
  vs worker-count default, and the replicated-engine guard;
* the serving pool — oracle parity through the executor (including
  across epoch bumps), telemetry golden-equivalence with the thread
  backend, worker SIGKILL recovery, and shared-memory cleanup.
"""

from __future__ import annotations

import os
import signal
import time
from multiprocessing.shared_memory import SharedMemory

import numpy as np
import pytest

from repro.baselines import ScanIndex
from repro.datasets import BoxStore, make_uniform
from repro.errors import ConfigurationError, ParallelError
from repro.geometry import Box
from repro.parallel import (
    ProcessPool,
    SegmentSpec,
    ShardSegment,
    SharedStoreView,
    decode_queries,
    decode_results,
    encode_queries,
    encode_results,
    publish_segment,
    resolve_start_method,
    segment_nbytes,
)
from repro.parallel.pool import START_METHOD_ENV
from repro.queries import Query, uniform_workload
from repro.sharding import QueryExecutor, ShardedIndex
from repro.sharding.executor import BACKEND_ENV
from repro.sharding.replication import ReplicatedShardedIndex
from repro.telemetry import Telemetry
from repro.telemetry.events import EventLog
from repro.telemetry.naming import (
    QUERY_SECONDS,
    WORKER_BATCH_SECONDS,
    WORKER_QUERY_SECONDS,
)


def _store(n: int = 50, ndim: int = 2, seed: int = 0) -> BoxStore:
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, 100, size=(n, ndim))
    return BoxStore(lo, lo + rng.uniform(0.1, 5, size=(n, ndim)))


def _query_matrix(ndim: int = 2, span: float = 100.0) -> list[Query]:
    """One query per legal (predicate, mode) combination, inside ``span``."""
    queries: list[Query] = []
    seq = 0
    for predicate in ("intersects", "within", "contains"):
        for mode in ("ids", "boxes", "count"):
            lo = (0.1 * span + seq,) * ndim
            hi = (0.6 * span + seq,) * ndim
            queries.append(
                Query(Box(lo, hi), predicate=predicate, mode=mode, seq=seq)
            )
            seq += 1
        queries.append(
            Query(
                Box((0.05 * span,) * ndim, (0.9 * span,) * ndim),
                predicate=predicate,
                mode="top_k",
                k=3,
                seq=seq,
            )
        )
        seq += 1
    point = (0.5 * span,) * ndim
    queries.append(
        Query(Box(point, point), predicate="covers_point", mode="ids", seq=seq)
    )
    return queries


# ----------------------------------------------------------------------
# Segments
# ----------------------------------------------------------------------
class TestSegments:
    def test_publish_attach_roundtrip_preserves_live_multiset(self):
        store = _store(40)
        store.delete_ids(np.arange(0, 40, 3, dtype=np.int64))
        spec, shm = publish_segment(store, sid=7, version=2)
        try:
            assert spec.sid == 7 and spec.version == 2
            assert spec.n_rows == store.live_count
            assert spec.epoch == store.epoch
            # A same-process attach shares this process's (sole) resource
            # tracker registration, so it must be left alone: tracker_shared.
            view = SharedStoreView.attach(spec, tracker_shared=True)
            try:
                assert view.store.n == store.live_count
                assert view.store.live_count == view.store.n
                assert view.live_fingerprint() == store.live_fingerprint()
            finally:
                view.close()
        finally:
            shm.close()
            shm.unlink()

    def test_view_is_zero_copy_over_the_mapping(self):
        store = _store(16)
        spec, shm = publish_segment(store, sid=0, version=0)
        view = SharedStoreView(spec, shm)
        backing = np.frombuffer(shm.buf, dtype=np.uint8)
        assert np.shares_memory(view.store.lo, backing)
        assert np.shares_memory(view.store.hi, backing)
        assert np.shares_memory(view.store.ids, backing)
        # Release our raw view of the buffer before closing the mapping —
        # mmap refuses to close while exported pointers exist.
        del backing
        view.close()
        shm.unlink()

    def test_empty_snapshot_is_representable(self):
        store = _store(5)
        store.delete_ids(store.ids.copy())
        spec, shm = publish_segment(store, sid=1, version=0)
        try:
            assert spec.n_rows == 0
            view = SharedStoreView.attach(spec, tracker_shared=True)
            try:
                assert view.store.n == 0
            finally:
                view.close()
        finally:
            shm.close()
            shm.unlink()

    def test_attach_rejects_undersized_segment(self):
        store = _store(8)
        spec, shm = publish_segment(store, sid=0, version=0)
        try:
            lying = SegmentSpec(
                name=spec.name,
                sid=spec.sid,
                version=spec.version,
                n_rows=spec.n_rows * 100,
                ndim=spec.ndim,
                epoch=spec.epoch,
            )
            with pytest.raises(ParallelError, match="bytes"):
                SharedStoreView.attach(lying, tracker_shared=True)
        finally:
            shm.close()
            shm.unlink()

    def test_destroy_unlinks_the_os_object(self):
        store = _store(8)
        spec, shm = publish_segment(store, sid=0, version=0)
        segment = ShardSegment(spec, shm, shard_token=object())
        segment.destroy()
        with pytest.raises(FileNotFoundError):
            SharedMemory(name=spec.name, create=False)

    def test_segment_nbytes_matches_layout(self):
        assert segment_nbytes(0, 3) == 0
        # lo + hi (float64) and ids (int64) per row.
        assert segment_nbytes(10, 3) == 10 * (2 * 3 * 8 + 8)


# ----------------------------------------------------------------------
# The wire
# ----------------------------------------------------------------------
class TestWire:
    def test_query_roundtrip_across_predicates_and_modes(self):
        queries = _query_matrix()
        decoded = decode_queries(encode_queries(queries))
        assert len(decoded) == len(queries)
        for want, got in zip(queries, decoded):
            assert got.predicate == want.predicate
            assert got.mode == want.mode
            assert got.k == want.k
            assert got.seq == want.seq
            assert got.window.lo == want.window.lo
            assert got.window.hi == want.window.hi

    def test_empty_sub_batch_is_rejected(self):
        with pytest.raises(ParallelError, match="empty"):
            encode_queries([])

    def test_corrupt_codes_fail_loudly(self):
        wire = encode_queries(_query_matrix())
        wire.predicates[0] = 200
        with pytest.raises(ParallelError, match="corrupt"):
            decode_queries(wire)

    def test_result_roundtrip_restores_per_mode_payloads(self):
        store = _store(60, seed=3)
        index = ScanIndex(store)
        queries = _query_matrix()
        results = index.execute_batch(queries)
        decoded = decode_results(
            encode_results(results, store.ndim), queries
        )
        assert len(decoded) == len(results)
        for want, got in zip(results, decoded):
            assert got.query == want.query
            assert got.count == want.count
            assert got.seconds == pytest.approx(want.seconds)
            if want.query.mode == "count":
                assert got.ids is None and got.boxes is None
            else:
                assert np.array_equal(got.ids, want.ids)
            if want.query.mode in ("boxes", "top_k"):
                assert np.array_equal(got.boxes[0], want.boxes[0])
                assert np.array_equal(got.boxes[1], want.boxes[1])
            elif want.query.mode == "ids":
                assert got.boxes is None


# ----------------------------------------------------------------------
# Backend resolution
# ----------------------------------------------------------------------
class TestBackendResolution:
    @pytest.fixture(autouse=True)
    def _clean_env(self, monkeypatch):
        # The CI matrix exports QUASII_EXECUTOR_BACKEND; resolution rules
        # are this class's subject, so start every test from a clean slate.
        monkeypatch.delenv(BACKEND_ENV, raising=False)

    def _engine(self, **kw):
        kw.setdefault("n_shards", 4)
        return ShardedIndex(make_uniform(500, seed=1).store.copy(), **kw)

    def test_worker_count_default(self):
        assert (
            QueryExecutor(self._engine(), max_workers=1).backend
            == "sequential"
        )
        assert (
            QueryExecutor(self._engine(), max_workers=3).backend == "threads"
        )

    def test_env_widens_parallel_executors_only(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "processes")
        assert (
            QueryExecutor(self._engine(), max_workers=4).backend
            == "processes"
        )
        # A deliberate single-worker executor keeps its sequential contract.
        assert (
            QueryExecutor(self._engine(), max_workers=1).backend
            == "sequential"
        )

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "processes")
        ex = QueryExecutor(self._engine(), max_workers=4, backend="threads")
        assert ex.backend == "threads"

    def test_unknown_backend_names_its_source(self, monkeypatch):
        with pytest.raises(ConfigurationError, match="backend argument"):
            QueryExecutor(self._engine(), max_workers=2, backend="fibers")
        monkeypatch.setenv(BACKEND_ENV, "fibers")
        with pytest.raises(ConfigurationError, match=BACKEND_ENV):
            QueryExecutor(self._engine(), max_workers=2)

    def test_replicated_engine_rejects_explicit_processes(self):
        engine = ReplicatedShardedIndex(
            make_uniform(500, seed=1).store.copy(), n_shards=2, replication=2
        )
        with pytest.raises(ConfigurationError, match="Replicated"):
            QueryExecutor(engine, max_workers=2, backend="processes")

    def test_replicated_engine_downgrades_env_processes(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "processes")
        engine = ReplicatedShardedIndex(
            make_uniform(500, seed=1).store.copy(), n_shards=2, replication=2
        )
        assert QueryExecutor(engine, max_workers=2).backend == "threads"

    def test_start_method_resolution(self, monkeypatch):
        monkeypatch.delenv(START_METHOD_ENV, raising=False)
        assert resolve_start_method() in ("fork", "spawn", "forkserver")
        with pytest.raises(ConfigurationError, match="start method"):
            resolve_start_method("osthreads")
        monkeypatch.setenv(START_METHOD_ENV, "nope")
        with pytest.raises(ConfigurationError, match="start method"):
            resolve_start_method()


# ----------------------------------------------------------------------
# The serving pool, through the executor
# ----------------------------------------------------------------------
class TestProcessBackend:
    @pytest.fixture(scope="class")
    def dataset(self):
        return make_uniform(4_000, seed=11)

    def _engine(self, dataset, **kw):
        kw.setdefault("n_shards", 4)
        return ShardedIndex(dataset.store.copy(), **kw)

    def test_pool_rejects_zero_workers(self, dataset):
        engine = self._engine(dataset)
        engine.build()
        with pytest.raises(ConfigurationError, match="n_workers"):
            ProcessPool(engine, n_workers=0)

    def test_parity_with_oracle_across_modes_and_epochs(self, dataset):
        queries = _query_matrix(ndim=3, span=10_000.0) + list(
            uniform_workload(dataset.universe, 20, 1e-3, seed=2)
        )
        scan = ScanIndex(dataset.store.copy())
        engine = self._engine(dataset)
        events = EventLog()

        def check(batch):
            for q, result in zip(queries, batch.query_results):
                want = scan.execute(q)
                assert result.count == want.count
                if result.query.mode != "count":
                    assert np.array_equal(
                        np.sort(result.ids), np.sort(want.ids)
                    )

        with QueryExecutor(
            engine, max_workers=2, backend="processes", events=events
        ) as ex:
            out = ex.run(queries)
            assert out.mode == "processes"
            assert out.workers == 2
            check(out)
            # Mutations bump the store epoch; the next batch must
            # republish segments and still agree with the oracle.
            rng = np.random.default_rng(5)
            blo = rng.uniform(0, 9_000, size=(30, 3))
            bhi = blo + rng.uniform(1, 50, size=(30, 3))
            assert np.array_equal(
                engine.insert(blo, bhi), scan.insert(blo, bhi)
            )
            victims = dataset.store.ids[:40].copy()
            assert engine.delete(victims) == scan.delete(victims) == 40
            refreshes_before = len(events.recent("worker.refresh"))
            check(ex.run(queries))
            assert len(events.recent("worker.refresh")) > refreshes_before

    def test_telemetry_matches_thread_backend(self, dataset):
        queries = uniform_workload(dataset.universe, 30, 1e-3, seed=3)
        runs = {}
        for backend in ("threads", "processes"):
            engine = self._engine(dataset)
            telemetry = Telemetry()
            with QueryExecutor(
                engine, max_workers=2, backend=backend, telemetry=telemetry
            ) as ex:
                ex.run(queries)
            runs[backend] = (engine.stats, telemetry.registry)
        thr_stats, thr_reg = runs["threads"]
        prc_stats, prc_reg = runs["processes"]
        # Routing and result accounting are driver-side on both paths.
        assert prc_stats.queries == thr_stats.queries == len(queries)
        assert prc_stats.shards_visited == thr_stats.shards_visited
        assert prc_stats.shards_pruned == thr_stats.shards_pruned
        assert prc_stats.results_returned == thr_stats.results_returned
        # Worker-side crack work folds back into the same counters: the
        # worker indexes see identical snapshots and identical sub-batches,
        # so the fleet-wide work totals must agree with the thread path.
        assert prc_stats.objects_tested == thr_stats.objects_tested
        # Driver histograms sample per query on both paths; worker.* is
        # the process tier's own vocabulary, absorbed after each batch.
        assert (
            prc_reg.histograms()[QUERY_SECONDS].count
            == thr_reg.histograms()[QUERY_SECONDS].count
        )
        assert prc_reg.histograms()[WORKER_BATCH_SECONDS].count > 0
        assert prc_reg.histograms()[WORKER_QUERY_SECONDS].count > 0
        assert WORKER_BATCH_SECONDS not in thr_reg.histograms()

    def test_sigkilled_worker_respawns_and_batch_completes(self, dataset):
        queries = uniform_workload(dataset.universe, 15, 1e-3, seed=4)
        scan = ScanIndex(dataset.store.copy())
        expected = [np.sort(scan.query(q)) for q in queries]
        engine = self._engine(dataset)
        events = EventLog()
        with QueryExecutor(
            engine, max_workers=2, backend="processes", events=events
        ) as ex:
            first = ex.run(queries)
            for got, want in zip(first.results, expected):
                assert np.array_equal(np.sort(got), want)
            pool = ex._pool
            victim = pool.worker_pids[0]
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 5.0
            while (
                pool._workers[0].is_alive() and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            second = ex.run(queries)
            for got, want in zip(second.results, expected):
                assert np.array_equal(np.sort(got), want)
            respawns = events.recent("worker.respawn")
            assert len(respawns) == 1
            assert respawns[0].payload["old_pid"] == victim
            assert pool.worker_pids[0] != victim

    def test_close_leaves_no_shared_memory_behind(self, dataset):
        engine = self._engine(dataset)
        ex = QueryExecutor(engine, max_workers=2, backend="processes")
        ex.run(uniform_workload(dataset.universe, 5, 1e-3, seed=6))
        pool = ex._pool
        names = [seg.spec.name for seg in pool._segments.values()]
        workers = list(pool._workers)
        assert names, "a served batch must have published segments"
        ex.close()
        for name in names:
            with pytest.raises(FileNotFoundError):
                SharedMemory(name=name, create=False)
        for worker in workers:
            assert not worker.is_alive()
        assert ex._pool is None
        # close() is idempotent.
        ex.close()

    def test_pool_refuses_batches_after_close(self, dataset):
        engine = self._engine(dataset)
        engine.build()
        pool = ProcessPool(engine, n_workers=1)
        pool.close()
        query = Query(Box((0.0,) * 3, (1.0,) * 3))
        with pytest.raises(ParallelError, match="close"):
            pool.run_batch([query], {0: [0]})

    def test_empty_batch_through_processes(self, dataset):
        with QueryExecutor(
            self._engine(dataset), max_workers=2, backend="processes"
        ) as ex:
            out = ex.run([])
            assert out.n_queries == 0
