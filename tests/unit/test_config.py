"""Unit tests for the QUASII threshold ladder (paper Equation 1)."""

from __future__ import annotations

import math

import pytest

from repro.core import PAPER_TAU, QuasiiConfig
from repro.errors import ConfigurationError


class TestForDataset:
    def test_paper_formula_3d(self):
        # n = 100k, tau = 60: r = ceil((100000/60)^(1/3)) = 12.
        cfg = QuasiiConfig.for_dataset(100_000, ndim=3, tau=60)
        assert cfg.fanout == 12
        assert cfg.level_thresholds == (60 * 12 * 12, 60 * 12, 60)
        assert cfg.leaf_threshold == 60

    def test_fanout_matches_equation_one(self):
        for n in (1_000, 50_000, 777_777):
            cfg = QuasiiConfig.for_dataset(n, ndim=3, tau=60)
            expected = math.ceil(math.ceil(n / 60) ** (1 / 3) - 1e-9)
            # ceil of the float cube root may differ by one ulp; accept both
            # exact and +1 (ceil on inexact floats).
            assert cfg.fanout in (expected, expected + 1)

    def test_enough_partitions(self):
        # r^d * tau must be able to hold the whole dataset.
        for n in (100, 5_000, 123_456):
            cfg = QuasiiConfig.for_dataset(n, ndim=3, tau=60)
            assert cfg.fanout ** 3 * 60 >= n

    def test_2d_ladder(self):
        cfg = QuasiiConfig.for_dataset(1_000, ndim=2, tau=10)
        assert len(cfg.level_thresholds) == 2
        assert cfg.level_thresholds[1] == 10
        assert cfg.level_thresholds[0] == 10 * cfg.fanout

    def test_tiny_dataset(self):
        cfg = QuasiiConfig.for_dataset(5, ndim=3, tau=60)
        assert cfg.fanout == 1
        assert cfg.level_thresholds == (60, 60, 60)

    def test_default_tau_is_papers(self):
        cfg = QuasiiConfig.for_dataset(10_000)
        assert cfg.leaf_threshold == PAPER_TAU == 60

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            QuasiiConfig.for_dataset(0)
        with pytest.raises(ConfigurationError):
            QuasiiConfig.for_dataset(10, tau=0)
        with pytest.raises(ConfigurationError):
            QuasiiConfig.for_dataset(10, ndim=0)


class TestExplicitLadder:
    def test_figure4_configuration(self):
        # The paper's 2d walk-through uses tau_x = 4, tau_y = 2.
        cfg = QuasiiConfig(ndim=2, level_thresholds=(4, 2))
        assert cfg.threshold(0) == 4
        assert cfg.threshold(1) == 2

    def test_threshold_out_of_range(self):
        cfg = QuasiiConfig(ndim=2, level_thresholds=(4, 2))
        with pytest.raises(ConfigurationError):
            cfg.threshold(2)
        with pytest.raises(ConfigurationError):
            cfg.threshold(-1)

    def test_rejects_increasing_ladder(self):
        with pytest.raises(ConfigurationError, match="non-increasing"):
            QuasiiConfig(ndim=2, level_thresholds=(2, 4))

    def test_rejects_wrong_length(self):
        with pytest.raises(ConfigurationError):
            QuasiiConfig(ndim=3, level_thresholds=(4, 2))

    def test_rejects_zero_threshold(self):
        with pytest.raises(ConfigurationError):
            QuasiiConfig(ndim=1, level_thresholds=(0,))
