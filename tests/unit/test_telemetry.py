"""Telemetry core: histograms, registry, recorder, tracer, instrumentation.

The histogram accuracy tests compare against ``numpy.percentile`` on
random samples — the contract is a bounded *relative* error (one bucket
of slack at 40 buckets/decade), not exact agreement.  Recorder tests
drive synthetic clocks: window alignment must be a pure function of the
tick timestamps.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.datasets import make_uniform
from repro.errors import ConfigurationError
from repro.queries import uniform_workload
from repro.sharding import (
    MaintenancePolicy,
    MaintenanceScheduler,
    QueryExecutor,
    ShardedIndex,
)
from repro.telemetry import (
    DISABLED,
    EventLog,
    LatencyHistogram,
    MetricsRegistry,
    Telemetry,
    TimeSeriesRecorder,
    Tracer,
)
from repro.telemetry.naming import METRICS, QUERY_SECONDS, SPANS, stats_metric


# ----------------------------------------------------------------------
# LatencyHistogram
# ----------------------------------------------------------------------
class TestLatencyHistogram:
    #: One bucket spans a factor of 10**(1/40); the midpoint estimate is
    #: off by at most half a bucket, but the rank itself can sit next to
    #: a bucket edge — allow a full bucket of relative slack.
    REL_TOL = 10 ** (1 / 40) - 1  # ~5.9%

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("q", [50, 90, 99])
    def test_percentiles_track_numpy(self, seed, q):
        rng = np.random.default_rng(seed)
        samples = rng.lognormal(mean=-7.0, sigma=1.5, size=20_000)
        hist = LatencyHistogram()
        for s in samples:
            hist.record(s)
        expected = float(np.percentile(samples, q))
        assert hist.percentile(q) == pytest.approx(
            expected, rel=2 * self.REL_TOL
        )

    def test_count_sum_max_exact(self):
        hist = LatencyHistogram()
        values = [1e-4, 2e-3, 5e-2, 2e-3]
        for v in values:
            hist.record(v)
        assert hist.count == 4
        assert hist.sum == pytest.approx(sum(values))
        assert hist.max == 5e-2
        assert hist.mean == pytest.approx(sum(values) / 4)

    def test_empty_percentiles_are_zero(self):
        assert LatencyHistogram().percentile(99) == 0.0
        assert LatencyHistogram().mean == 0.0

    def test_out_of_range_samples_clamp(self):
        hist = LatencyHistogram(lo=1e-3, hi=1.0)
        hist.record(1e-9)
        hist.record(50.0)
        assert hist.count == 2
        assert hist.counts[0] == 1
        assert hist.counts[-1] == 1

    def test_merge_matches_single_stream(self):
        rng = np.random.default_rng(3)
        a, b = LatencyHistogram(), LatencyHistogram()
        both = LatencyHistogram()
        for i, s in enumerate(rng.lognormal(-7, 1.0, size=2000)):
            (a if i % 2 else b).record(s)
            both.record(s)
        merged = a.merge(b)
        assert merged.counts == both.counts
        assert merged.count == both.count
        assert merged.max == both.max
        assert merged.sum == pytest.approx(both.sum)

    def test_merge_associative_and_commutative(self):
        rng = np.random.default_rng(4)
        hists = []
        for _ in range(3):
            h = LatencyHistogram()
            for s in rng.lognormal(-6, 1.0, size=500):
                h.record(s)
            hists.append(h)
        a, b, c = hists
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        swapped = c.merge(a.merge(b))
        assert left.counts == right.counts == swapped.counts
        assert left.count == right.count == swapped.count

    def test_merge_layout_mismatch_raises(self):
        with pytest.raises(ConfigurationError, match="layout"):
            LatencyHistogram().merge(LatencyHistogram(lo=1e-3))

    def test_delta_since(self):
        hist = LatencyHistogram()
        hist.record(1e-3)
        before = hist.copy()
        hist.record(1e-2)
        delta = hist.delta_since(before)
        assert delta.count == 1
        assert delta.sum == pytest.approx(1e-2)
        # Delta max is a bucket upper edge: >= the true window max,
        # within one bucket factor of it.
        assert 1e-2 <= delta.max <= 1e-2 * 10 ** (1 / 40) * 1.01

    def test_delta_since_rejects_non_prefix(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        b.record(1e-3)
        with pytest.raises(ConfigurationError, match="earlier snapshot"):
            a.delta_since(b)

    def test_to_dict_keys_and_buckets(self):
        hist = LatencyHistogram()
        hist.record(1e-3)
        d = hist.to_dict(include_buckets=True)
        assert {"count", "sum", "mean", "max", "p50", "p90", "p99"} <= set(d)
        assert sum(d["buckets"].values()) == 1
        assert "buckets" not in hist.to_dict()

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            LatencyHistogram(lo=0.0)
        with pytest.raises(ConfigurationError):
            LatencyHistogram(lo=1.0, hi=0.5)
        with pytest.raises(ConfigurationError):
            LatencyHistogram(buckets_per_decade=0)


# ----------------------------------------------------------------------
# MetricsRegistry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_get_or_create_identity(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")
        assert reg.gauge("g") is reg.gauge("g")

    def test_kind_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigurationError, match="already registered"):
            reg.gauge("x")

    def test_snapshot_views(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h").record(1e-3)
        assert reg.counters() == {"c": 3}
        assert reg.gauges() == {"g": 1.5}
        snap = reg.histograms()["h"]
        reg.histogram("h").record(1e-3)
        assert snap.count == 1  # snapshot copies are independent
        assert reg.names() == ["c", "g", "h"]

    def test_counter_rejects_negative(self):
        with pytest.raises(ConfigurationError, match="only increase"):
            MetricsRegistry().counter("c").inc(-1)


# ----------------------------------------------------------------------
# TimeSeriesRecorder
# ----------------------------------------------------------------------
class TestTimeSeriesRecorder:
    def test_window_alignment(self):
        reg = MetricsRegistry()
        rec = TimeSeriesRecorder(reg, window=1.0)
        rec.tick(10.0)
        reg.counter("ops").inc(5)
        assert rec.tick(10.9) == 0
        assert rec.tick(11.0) == 1  # boundary is exclusive of the window
        w = rec.windows[0]
        assert (w.start, w.end) == (10.0, 11.0)
        assert w.counters["ops"] == 5

    def test_deltas_not_cumulative(self):
        reg = MetricsRegistry()
        rec = TimeSeriesRecorder(reg, window=1.0)
        rec.tick(0.0)
        reg.counter("ops").inc(2)
        reg.histogram("lat").record(1e-3)
        rec.tick(1.0)
        reg.counter("ops").inc(7)
        reg.histogram("lat").record(1e-2)
        rec.tick(2.0)
        assert [w.counters["ops"] for w in rec.windows] == [2, 7]
        assert [w.histograms["lat"].count for w in rec.windows] == [1, 1]

    def test_jump_emits_empty_windows(self):
        reg = MetricsRegistry()
        rec = TimeSeriesRecorder(reg, window=1.0)
        rec.tick(0.0)
        reg.counter("ops").inc(4)
        assert rec.tick(3.5) == 3
        assert [w.counters.get("ops", 0) for w in rec.windows] == [4, 0, 0]
        assert [(w.start, w.end) for w in rec.windows] == [
            (0.0, 1.0), (1.0, 2.0), (2.0, 3.0),
        ]

    def test_flush_partial_window(self):
        reg = MetricsRegistry()
        rec = TimeSeriesRecorder(reg, window=1.0)
        rec.tick(0.0)
        rec.tick(1.0)
        reg.counter("ops").inc(1)
        partial = rec.flush(1.25)
        assert partial is not None
        assert (partial.start, partial.end) == (1.0, 1.25)
        assert partial.counters["ops"] == 1
        # Flush exactly on a boundary adds nothing extra.
        reg2 = MetricsRegistry()
        rec2 = TimeSeriesRecorder(reg2, window=1.0)
        rec2.tick(0.0)
        assert rec2.flush(1.0) is None
        assert len(rec2.windows) == 1

    def test_gauges_are_levels(self):
        reg = MetricsRegistry()
        rec = TimeSeriesRecorder(reg, window=1.0)
        rec.tick(0.0)
        reg.gauge("g").set(5.0)
        rec.tick(1.0)
        rec.tick(2.0)
        assert [w.gauges["g"] for w in rec.windows] == [5.0, 5.0]

    def test_window_to_dict_rebases(self):
        reg = MetricsRegistry()
        rec = TimeSeriesRecorder(reg, window=1.0)
        rec.tick(100.0)
        rec.tick(101.0)
        d = rec.windows[0].to_dict(origin=100.0)
        assert (d["start"], d["end"]) == (0.0, 1.0)

    def test_invalid_window_raises(self):
        with pytest.raises(ConfigurationError, match="window"):
            TimeSeriesRecorder(MetricsRegistry(), window=0.0)


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_nesting_depth_and_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner", shard=3) as span:
                span.set(rows=10)
        inner, outer = tracer.records
        assert (inner.name, inner.depth, inner.parent) == ("inner", 1, "outer")
        assert (outer.name, outer.depth, outer.parent) == ("outer", 0, None)
        assert inner.attrs == {"shard": 3, "rows": 10}
        assert 0 <= inner.seconds <= outer.seconds

    def test_spans_filter_and_total(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("a"):
                pass
        with tracer.span("b"):
            pass
        assert len(tracer.spans("a")) == 3
        assert len(tracer.spans()) == 4
        assert tracer.total_seconds("a") == pytest.approx(
            sum(r.seconds for r in tracer.spans("a"))
        )

    def test_disabled_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("x") as span:
            span.set(ignored=1)
        assert list(tracer.records) == []
        assert DISABLED.span("y") is DISABLED.span("z")  # shared no-op

    def test_disabled_overhead_near_zero(self):
        tracer = Tracer(enabled=False)
        t0 = time.perf_counter()
        for _ in range(100_000):
            with tracer.span("hot"):
                pass
        elapsed = time.perf_counter() - t0
        # ~0.6 µs/span on any plausible machine; 2 s is a 20x margin
        # against CI noise while still catching accidental allocation.
        assert elapsed < 2.0
        assert list(tracer.records) == []

    def test_registry_backed_span_histograms(self):
        reg = MetricsRegistry()
        tracer = Tracer(registry=reg)
        with tracer.span("maintenance.compact"):
            pass
        hist = reg.histograms()["span.maintenance.compact"]
        assert hist.count == 1
        assert hist.sum > 0

    def test_max_spans_cap_drops_but_counts(self):
        reg = MetricsRegistry()
        tracer = Tracer(registry=reg, max_spans=2)
        for _ in range(5):
            with tracer.span("s"):
                pass
        assert len(tracer.records) == 2
        assert tracer.dropped == 3
        assert reg.histograms()["span.s"].count == 5  # histogram complete

    def test_ring_keeps_most_recent_records(self):
        tracer = Tracer(max_spans=3)
        for i in range(6):
            with tracer.span(f"s{i}"):
                pass
        assert [r.name for r in tracer.records] == ["s3", "s4", "s5"]
        assert tracer.dropped == 3

    def test_spans_returns_defensive_copy(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        view = tracer.spans()
        view.clear()
        assert len(tracer.spans()) == 1
        assert tracer.spans() is not tracer.records

    def test_exception_still_records(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        assert tracer.spans("boom")
        assert tracer._stack() == []  # stack unwound


# ----------------------------------------------------------------------
# Instrumented components end to end
# ----------------------------------------------------------------------
class TestInstrumentation:
    def _engine(self, n=2000, shards=3):
        ds = make_uniform(n, seed=7)
        engine = ShardedIndex(ds.store.copy(), n_shards=shards)
        engine.build()
        return ds, engine

    def test_executor_records_batch_metrics(self):
        ds, engine = self._engine()
        telemetry = Telemetry()
        ex = QueryExecutor(engine, max_workers=2, telemetry=telemetry)
        queries = uniform_workload(ds.universe, 20, seed=1)
        out = ex.run(queries)
        reg = telemetry.registry
        assert reg.histograms()[QUERY_SECONDS].count == 20
        assert reg.histograms()["batch.seconds"].count == 1
        shard_hist = reg.histograms()["shard.batch.seconds"]
        assert shard_hist.count == sum(1 for s in out.shard_seconds if s)
        for phase in ("route", "fanout", "merge"):
            assert reg.histograms()[f"batch.{phase}.seconds"].count == 1
        # IndexStats deltas flowed into stats.* counters.
        counters = reg.counters()
        assert counters[stats_metric("queries")] == 20
        assert counters.get(stats_metric("objects_tested"), 0) > 0

    def test_executor_without_telemetry_has_no_registry(self):
        ds, engine = self._engine()
        ex = QueryExecutor(engine, max_workers=2)
        ex.run(uniform_workload(ds.universe, 5, seed=1))
        assert ex.telemetry is None

    def test_disabled_telemetry_is_ignored(self):
        ds, engine = self._engine()
        ex = QueryExecutor(engine, telemetry=Telemetry(enabled=False))
        ex.run(uniform_workload(ds.universe, 5, seed=1))
        assert ex.telemetry is None

    def test_scheduler_traces_maintenance_spans(self):
        _, engine = self._engine()
        telemetry = Telemetry()
        scheduler = MaintenanceScheduler(
            engine, MaintenancePolicy(check_every=1), tracer=telemetry.tracer
        )
        scheduler.run()
        names = {r.name for r in telemetry.tracer.records}
        assert "maintenance.check" in names
        assert "maintenance.compact" in names
        assert "maintenance.rebalance" in names
        # Registry-backed: durations appear as span.* histograms too.
        assert "span.maintenance.check" in telemetry.registry.names()

    def test_scheduler_without_tracer_uses_disabled(self):
        _, engine = self._engine()
        scheduler = MaintenanceScheduler(engine, MaintenancePolicy())
        assert scheduler.tracer is DISABLED
        scheduler.run()  # must not record anywhere
        assert list(DISABLED.records) == []

    def test_executor_emits_slow_query_events(self):
        ds, engine = self._engine()
        events = EventLog()
        # threshold 0.0: every executed query is "slow", deterministically.
        ex = QueryExecutor(
            engine, max_workers=2, events=events, slow_query_threshold=0.0
        )
        queries = uniform_workload(ds.universe, 10, seed=1)
        out = ex.run(queries)
        slow = events.recent("slow_query")
        assert len(slow) == 10
        payload = slow[0].payload
        for key in (
            "seq", "predicate", "mode", "window_lo", "window_hi",
            "seconds", "count", "batch_mode", "batch_seconds",
            "batch_queries", "shards_visited", "shards_pruned",
            "shard_seconds", "route_seconds", "fanout_seconds",
            "merge_seconds",
        ):
            assert key in payload, key
        assert payload["batch_mode"] == out.mode
        assert payload["batch_queries"] == 10
        json.dumps(payload)  # wire-ready without a default=

    def test_executor_without_threshold_emits_nothing(self):
        ds, engine = self._engine()
        events = EventLog()
        ex = QueryExecutor(engine, max_workers=1, events=events)
        ex.run(uniform_workload(ds.universe, 5, seed=1))
        assert events.recent() == []

    def test_executor_rejects_negative_threshold(self):
        _, engine = self._engine()
        with pytest.raises(ConfigurationError):
            QueryExecutor(
                engine, events=EventLog(), slow_query_threshold=-1.0
            )

    def test_scheduler_emits_compaction_event_when_work_happens(self):
        ds, engine = self._engine()
        events = EventLog()
        scheduler = MaintenanceScheduler(
            engine,
            MaintenancePolicy(check_every=1, dead_fraction=0.1),
            events=events,
        )
        scheduler.run()  # nothing dead yet: no event
        assert events.recent("maintenance.compact") == []
        engine.delete(ds.store.ids[:1000])  # half the rows tombstoned
        scheduler.run()
        (event,) = events.recent("maintenance.compact")
        assert event.payload["rows_reclaimed"] > 0
        assert event.payload["seconds"] >= 0.0
        # Events mirror the report: counts must agree.
        assert scheduler.report.compaction_passes == 1
        assert len(events.recent("maintenance.rebalance")) == (
            scheduler.report.rebalances
        )

    def test_vocabulary_covers_instrumented_names(self):
        # Every name the executor writes must be canonical.
        for name in (
            "query.seconds", "batch.seconds", "batch.route.seconds",
            "batch.fanout.seconds", "batch.merge.seconds",
            "shard.batch.seconds",
        ):
            assert name in METRICS
        for span in ("maintenance.check", "maintenance.compact",
                     "maintenance.rebalance"):
            assert span in SPANS
