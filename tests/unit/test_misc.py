"""Unit tests for utilities, the index base class, and the scan baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.scan import ScanIndex
from repro.datasets import make_uniform
from repro.errors import QueryError
from repro.geometry import Box
from repro.index import IndexStats
from repro.queries import RangeQuery, uniform_workload
from repro.util import gather_ranges


class TestGatherRanges:
    def test_basic(self):
        out = gather_ranges(np.array([0, 5, 9]), np.array([2, 5, 12]))
        assert out.tolist() == [0, 1, 9, 10, 11]

    def test_empty_input(self):
        assert gather_ranges(np.array([]), np.array([])).size == 0

    def test_all_empty_ranges(self):
        out = gather_ranges(np.array([3, 7]), np.array([3, 7]))
        assert out.size == 0

    def test_matches_naive(self):
        rng = np.random.default_rng(0)
        starts = rng.integers(0, 100, size=50)
        ends = starts + rng.integers(0, 10, size=50)
        expected = np.concatenate(
            [np.arange(s, e) for s, e in zip(starts, ends)] or [np.array([])]
        )
        assert np.array_equal(gather_ranges(starts, ends), expected)

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            gather_ranges(np.array([5]), np.array([3]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            gather_ranges(np.array([1, 2]), np.array([3]))


class TestIndexStats:
    def test_reset(self):
        s = IndexStats(queries=3, cracks=2, objects_tested=10)
        s.reset()
        assert s.queries == 0 and s.cracks == 0 and s.objects_tested == 0

    def test_snapshot_is_decoupled(self):
        s = IndexStats(queries=1)
        snap = s.snapshot()
        s.queries = 99
        assert snap.queries == 1


class TestScan:
    def test_matches_manual_check(self):
        ds = make_uniform(500, seed=1)
        scan = ScanIndex(ds.store)
        q = uniform_workload(ds.universe, 1, 1e-2, seed=2)[0]
        hits = set(scan.query(q).tolist())
        for row in range(ds.n):
            expected = ds.store.box_at(row).intersects(q.window)
            assert (ds.store.id_at(row) in hits) == expected

    def test_tests_every_object(self):
        ds = make_uniform(321, seed=3)
        scan = ScanIndex(ds.store)
        scan.query(uniform_workload(ds.universe, 1, 1e-2, seed=4)[0])
        assert scan.stats.objects_tested == 321

    def test_query_counts_and_result_counter(self):
        ds = make_uniform(100, seed=5)
        scan = ScanIndex(ds.store)
        total = 0
        for q in uniform_workload(ds.universe, 5, 0.05, seed=6):
            total += scan.query(q).size
        assert scan.stats.queries == 5
        assert scan.stats.results_returned == total

    def test_dim_mismatch_rejected(self):
        ds = make_uniform(10, seed=7)
        scan = ScanIndex(ds.store)
        with pytest.raises(QueryError):
            scan.query(RangeQuery(Box.unit(2)))

    def test_memory_is_zero(self):
        ds = make_uniform(10, seed=8)
        assert ScanIndex(ds.store).memory_bytes() == 0
