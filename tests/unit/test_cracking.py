"""Unit tests for the cracking kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import crack, crack_values, partition_order, range_dim_stats
from repro.datasets import BoxStore
from repro.errors import ConfigurationError


def make_store(keys: list[float]) -> BoxStore:
    """1-d store whose lower coords are ``keys`` with extent 0.5 each."""
    lo = np.array(keys, dtype=np.float64)[:, None]
    return BoxStore(lo, lo + 0.5)


class TestPartitionOrder:
    def test_two_way(self):
        keys = np.array([5.0, 1.0, 3.0, 9.0, 2.0])
        order, sizes = partition_order(keys, [3.0])
        assert sizes.tolist() == [2, 3]
        rearranged = keys[order]
        assert np.all(rearranged[:2] < 3.0)
        assert np.all(rearranged[2:] >= 3.0)

    def test_three_way(self):
        keys = np.array([5.0, 1.0, 3.0, 9.0, 2.0, 7.0])
        order, sizes = partition_order(keys, [3.0, 7.0])
        rearranged = keys[order]
        assert np.all(rearranged[: sizes[0]] < 3.0)
        mid = rearranged[sizes[0] : sizes[0] + sizes[1]]
        assert np.all((mid >= 3.0) & (mid < 7.0))
        assert np.all(rearranged[sizes[0] + sizes[1] :] >= 7.0)

    def test_stability(self):
        keys = np.array([1.0, 1.0, 0.0, 1.0])
        order, _ = partition_order(keys, [0.5])
        # Equal keys keep their original relative order.
        assert order.tolist() == [2, 0, 1, 3]

    def test_boundary_key_goes_right(self):
        order, sizes = partition_order(np.array([3.0]), [3.0])
        assert sizes.tolist() == [0, 1], "'key < bound' convention"

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ConfigurationError):
            partition_order(np.array([1.0]), [5.0, 2.0])

    def test_rejects_empty_bounds(self):
        with pytest.raises(ConfigurationError):
            partition_order(np.array([1.0]), [])

    def test_all_left_or_all_right(self):
        keys = np.array([1.0, 2.0])
        _, sizes = partition_order(keys, [10.0])
        assert sizes.tolist() == [2, 0]
        _, sizes = partition_order(keys, [0.0])
        assert sizes.tolist() == [0, 2]


class TestCrackStore:
    def test_crack_reorders_physically(self):
        store = make_store([5.0, 1.0, 3.0, 9.0, 2.0])
        splits = crack(store, 0, 5, 0, [3.0])
        assert splits == [2]
        assert np.all(store.lo[:2, 0] < 3.0)
        assert np.all(store.lo[2:, 0] >= 3.0)

    def test_crack_subrange_leaves_rest_alone(self):
        store = make_store([5.0, 1.0, 3.0, 9.0, 2.0])
        before_first = store.box_at(0)
        before_last = store.box_at(4)
        crack(store, 1, 4, 0, [4.0])
        assert store.box_at(0) == before_first
        assert store.box_at(4) == before_last
        assert np.all(store.lo[1:2, 0] < 4.0)

    def test_crack_preserves_multiset(self):
        store = make_store([5.0, 1.0, 3.0, 9.0, 2.0, 2.0, 8.0])
        fp = store.fingerprint()
        crack(store, 0, 7, 0, [2.0, 6.0])
        assert store.fingerprint() == fp

    def test_crack_three_way_splits(self):
        store = make_store([5.0, 1.0, 3.0, 9.0, 2.0, 7.0])
        splits = crack(store, 0, 6, 0, [3.0, 7.0])
        assert splits == [2, 4]

    def test_crack_on_higher_dim(self):
        lo = np.array([[0.0, 5.0], [1.0, 1.0], [2.0, 3.0]])
        store = BoxStore(lo, lo + 1.0)
        splits = crack(store, 0, 3, 1, [3.0])
        assert splits == [1]
        assert store.lo[0, 1] == 1.0


class TestCrackValues:
    def test_basic(self):
        values = np.array([5, 1, 3, 9, 2], dtype=np.uint64)
        payload = np.arange(5)
        split = crack_values(values, payload, 0, 5, 3)
        assert split == 2
        assert np.all(values[:2] < 3)
        assert np.all(values[2:] >= 3)
        # Payload permuted in lockstep.
        assert sorted(payload.tolist()) == [0, 1, 2, 3, 4]
        assert payload[0] in (1, 4) and payload[1] in (1, 4)

    def test_subrange(self):
        values = np.array([9, 5, 1, 3, 0], dtype=np.uint64)
        payload = np.arange(5)
        split = crack_values(values, payload, 1, 4, 4)
        assert split == 3
        assert values[0] == 9 and values[4] == 0


class TestRangeDimStats:
    def make(self):
        lo = np.array([[1.0], [5.0], [3.0]])
        hi = np.array([[2.0], [9.0], [3.5]])
        return BoxStore(lo, hi)

    def test_stats_lower(self):
        kmin, kmax, dlo, dhi = range_dim_stats(self.make(), 0, 3, 0)
        assert (kmin, kmax, dlo, dhi) == (1.0, 5.0, 1.0, 9.0)

    def test_subrange(self):
        kmin, kmax, dlo, dhi = range_dim_stats(self.make(), 1, 3, 0)
        assert (kmin, kmax, dlo, dhi) == (3.0, 5.0, 3.0, 9.0)

    def test_stats_upper(self):
        kmin, kmax, dlo, dhi = range_dim_stats(self.make(), 0, 3, 0, "upper")
        assert (kmin, kmax) == (2.0, 9.0)
        assert (dlo, dhi) == (1.0, 9.0)

    def test_stats_center(self):
        kmin, kmax, dlo, dhi = range_dim_stats(self.make(), 0, 3, 0, "center")
        assert (kmin, kmax) == (1.5, 7.0)
        assert (dlo, dhi) == (1.0, 9.0)

    def test_rejects_unknown_representative(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            range_dim_stats(self.make(), 0, 3, 0, "corner")


class TestRepresentativeCrack:
    def test_crack_on_center(self):
        lo = np.array([[0.0], [4.0], [8.0]])
        hi = np.array([[2.0], [6.0], [10.0]])  # centers 1, 5, 9
        store = BoxStore(lo, hi)
        splits = crack(store, 0, 3, 0, [5.0], representative="center")
        assert splits == [1]  # only center 1 < 5

    def test_crack_on_upper(self):
        lo = np.array([[0.0], [4.0], [8.0]])
        hi = np.array([[2.0], [6.0], [10.0]])
        store = BoxStore(lo, hi)
        splits = crack(store, 0, 3, 0, [7.0], representative="upper")
        assert splits == [2]  # uppers 2 and 6 < 7
