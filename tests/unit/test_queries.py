"""Unit tests for RangeQuery and the workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, QueryError
from repro.geometry import Box
from repro.queries import (
    RangeQuery,
    clustered_workload,
    selectivity_sweep,
    side_for_volume_fraction,
    uniform_workload,
)


class TestRangeQuery:
    def test_fields(self):
        q = RangeQuery(Box((0.0, 0.0), (1.0, 2.0)), seq=3)
        assert q.seq == 3
        assert q.ndim == 2
        assert q.volume == 2.0
        assert np.array_equal(q.lo, [0.0, 0.0])
        assert np.array_equal(q.hi, [1.0, 2.0])

    def test_negative_seq_rejected(self):
        with pytest.raises(QueryError):
            RangeQuery(Box.unit(2), seq=-1)

    def test_volume_fraction(self):
        universe = Box((0.0, 0.0), (10.0, 10.0))
        q = RangeQuery(Box((0.0, 0.0), (1.0, 1.0)))
        assert q.volume_fraction(universe) == pytest.approx(0.01)

    def test_volume_fraction_degenerate_window_is_zero(self):
        universe = Box((0.0, 0.0), (10.0, 10.0))
        point = RangeQuery(Box((3.0, 4.0), (3.0, 4.0)))
        assert point.volume_fraction(universe) == 0.0
        line = RangeQuery(Box((0.0, 0.0), (5.0, 0.0)))
        assert line.volume_fraction(universe) == 0.0

    def test_volume_fraction_degenerate_universe_projects(self):
        # A line universe embedded in 2-d: the ratio is measured over the
        # universe's positive-extent dimensions only.
        degenerate = Box((0.0, 0.0), (0.0, 10.0))
        q = RangeQuery(Box.unit(2))
        assert q.volume_fraction(degenerate) == pytest.approx(0.1)
        # A point universe: every clipped window covers all of it.
        assert q.volume_fraction(Box((0.0, 0.0), (0.0, 0.0))) == 1.0


class TestSideForVolumeFraction:
    def test_cube_root_in_3d(self):
        universe = Box((0.0,) * 3, (100.0,) * 3)
        side = side_for_volume_fraction(universe, 0.001)
        assert side == pytest.approx(10.0)

    def test_full_fraction_gives_universe_side(self):
        universe = Box((0.0,) * 2, (50.0,) * 2)
        assert side_for_volume_fraction(universe, 1.0) == pytest.approx(50.0)

    def test_zero_fraction_is_point_query(self):
        assert side_for_volume_fraction(Box.unit(3), 0.0) == 0.0

    def test_rejects_negative_and_over_one(self):
        universe = Box.unit(3)
        with pytest.raises(QueryError):
            side_for_volume_fraction(universe, -0.1)
        with pytest.raises(QueryError):
            side_for_volume_fraction(universe, 1.5)


class TestUniformWorkload:
    def test_count_and_seq(self):
        universe = Box((0.0,) * 3, (100.0,) * 3)
        qs = uniform_workload(universe, 25, 1e-3, seed=1)
        assert len(qs) == 25
        assert [q.seq for q in qs] == list(range(25))

    def test_windows_inside_universe(self):
        universe = Box((0.0,) * 3, (100.0,) * 3)
        for q in uniform_workload(universe, 50, 1e-2, seed=2):
            assert universe.contains_box(q.window)

    def test_volume_close_to_requested(self):
        universe = Box((0.0,) * 3, (1000.0,) * 3)
        qs = uniform_workload(universe, 100, 1e-3, seed=3)
        fracs = [q.volume_fraction(universe) for q in qs]
        # Boundary clipping can shrink some windows, never grow them.
        assert max(fracs) <= 1e-3 + 1e-12
        assert np.median(fracs) == pytest.approx(1e-3, rel=0.05)

    def test_deterministic(self):
        universe = Box.unit(3)
        a = uniform_workload(universe, 10, 1e-2, seed=9)
        b = uniform_workload(universe, 10, 1e-2, seed=9)
        assert all(x.window == y.window for x, y in zip(a, b))

    def test_rejects_zero_queries(self):
        with pytest.raises(ConfigurationError):
            uniform_workload(Box.unit(3), 0, 1e-2)


class TestClusteredWorkload:
    def test_shape(self):
        universe = Box((0.0,) * 3, (1000.0,) * 3)
        qs = clustered_workload(universe, 5, 100, 1e-4, seed=1)
        assert len(qs) == 500
        assert [q.seq for q in qs] == list(range(500))

    def test_queries_cluster_spatially(self):
        universe = Box((0.0,) * 3, (1000.0,) * 3)
        qs = clustered_workload(universe, 4, 50, 1e-4, sigma_in_sides=1.0, seed=2)
        centers = np.array([q.window.center for q in qs])
        # Within-cluster spread must be far below the between-cluster spread.
        for c in range(4):
            block = centers[c * 50 : (c + 1) * 50]
            spread = np.linalg.norm(block - block.mean(axis=0), axis=1).mean()
            assert spread < 100.0, "cluster queries should be spatially close"
        global_spread = np.linalg.norm(centers - centers.mean(axis=0), axis=1).mean()
        assert global_spread > 2 * spread

    def test_windows_inside_universe(self):
        universe = Box((0.0,) * 3, (500.0,) * 3)
        for q in clustered_workload(universe, 3, 20, 1e-3, seed=3):
            assert universe.contains_box(q.window)

    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigurationError):
            clustered_workload(Box.unit(3), 0, 10)
        with pytest.raises(ConfigurationError):
            clustered_workload(Box.unit(3), 2, 0)
        with pytest.raises(ConfigurationError):
            clustered_workload(Box.unit(3), 2, 2, sigma_in_sides=-1.0)


class TestSelectivitySweep:
    def test_one_workload_per_fraction(self):
        universe = Box((0.0,) * 3, (100.0,) * 3)
        sweep = selectivity_sweep(universe, [1e-4, 1e-2], 10, seed=4)
        assert set(sweep) == {1e-4, 1e-2}
        assert all(len(qs) == 10 for qs in sweep.values())

    def test_shared_centers(self):
        universe = Box((0.0,) * 3, (100.0,) * 3)
        sweep = selectivity_sweep(universe, [1e-4, 1e-2], 20, seed=5)
        small = sweep[1e-4]
        large = sweep[1e-2]
        compared = 0
        for a, b in zip(small, large):
            # Clipping at the universe boundary legitimately shifts centers;
            # compare only interior windows.
            touches = any(l <= 0.0 for l in b.window.lo) or any(
                h >= 100.0 for h in b.window.hi
            )
            if not touches:
                assert np.allclose(a.window.center, b.window.center, atol=1e-9)
                compared += 1
        assert compared > 0, "need at least one interior window to compare"

    def test_empty_fractions_rejected(self):
        with pytest.raises(ConfigurationError):
            selectivity_sweep(Box.unit(3), [], 5)
