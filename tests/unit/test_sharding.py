"""Unit tests for the sharding subsystem (partitioners, engine, executor)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import ScanIndex
from repro.core import QuasiiConfig, QuasiiIndex
from repro.datasets import BoxStore, make_uniform
from repro.errors import ConfigurationError, DatasetError
from repro.geometry import Box
from repro.index import SpatialIndex
from repro.queries import RangeQuery, uniform_workload
from repro.sharding import (
    PARTITIONERS,
    QueryExecutor,
    RoundRobinPartitioner,
    STRPartitioner,
    ShardedIndex,
    make_partitioner,
)


def _grid_store(side: int = 10, spacing: float = 10.0) -> BoxStore:
    """A side x side grid of unit boxes (2-d), ids row-major."""
    xs, ys = np.meshgrid(np.arange(side), np.arange(side), indexing="ij")
    lo = np.stack([xs.ravel() * spacing, ys.ravel() * spacing], axis=1).astype(float)
    return BoxStore(lo, lo + 1.0)


def _window(lo, hi, seq=0) -> RangeQuery:
    return RangeQuery(Box(tuple(lo), tuple(hi)), seq=seq)


# ----------------------------------------------------------------------
# Partitioners
# ----------------------------------------------------------------------
class TestPartitioners:
    def test_registry_and_factory(self):
        assert set(PARTITIONERS) == {"str", "round-robin"}
        assert isinstance(make_partitioner("str"), STRPartitioner)
        p = RoundRobinPartitioner()
        assert make_partitioner(p) is p
        with pytest.raises(ConfigurationError, match="unknown partitioner"):
            make_partitioner("hash")

    @pytest.mark.parametrize("name", sorted(PARTITIONERS))
    @pytest.mark.parametrize("k", [1, 2, 3, 5, 8])
    def test_assign_is_total_and_balanced(self, name, k):
        store = _grid_store(10)
        owners = make_partitioner(name).assign(store.lo, store.hi, k)
        assert owners.shape == (store.n,)
        assert owners.min() >= 0 and owners.max() < k
        counts = np.bincount(owners, minlength=k)
        assert counts.sum() == store.n
        # Near-equal split: no shard more than one tile's worth off.
        assert counts.max() - counts.min() <= max(2, store.n // k // 2)

    def test_str_tiles_are_spatially_compact(self):
        store = _grid_store(10)
        owners = STRPartitioner().assign(store.lo, store.hi, 4)
        # 4 shards over a 10x10 grid of boxes: each shard's MBB should
        # cover ~1/4 of the area, far less than the whole universe.
        for sid in range(4):
            rows = np.flatnonzero(owners == sid)
            span = store.lo[rows].max(axis=0) - store.lo[rows].min(axis=0)
            assert span.prod() <= 0.35 * (90.0 * 90.0)

    def test_str_assign_more_shards_than_rows(self):
        store = _grid_store(2)  # 4 rows
        owners = STRPartitioner().assign(store.lo, store.hi, 7)
        assert np.unique(owners).size == 4  # some shards stay empty

    def test_round_robin_route_rotates(self):
        p = RoundRobinPartitioner()
        lo = np.zeros((5, 2))
        hi = np.ones((5, 2))
        mbb_lo = np.zeros((3, 2))
        mbb_hi = np.ones((3, 2))
        loads = np.zeros(3, dtype=np.int64)
        first = p.route(lo, hi, mbb_lo, mbb_hi, loads)
        second = p.route(lo, hi, mbb_lo, mbb_hi, loads)
        assert first.tolist() == [0, 1, 2, 0, 1]
        assert second.tolist() == [2, 0, 1, 2, 0]

    def test_str_route_prefers_containing_shard(self):
        p = STRPartitioner()
        mbb_lo = np.array([[0.0, 0.0], [100.0, 0.0]])
        mbb_hi = np.array([[50.0, 50.0], [150.0, 50.0]])
        loads = np.array([10, 10], dtype=np.int64)
        lo = np.array([[120.0, 10.0]])
        hi = np.array([[121.0, 11.0]])
        assert p.route(lo, hi, mbb_lo, mbb_hi, loads).tolist() == [1]

    def test_str_route_breaks_ties_toward_least_loaded(self):
        p = STRPartitioner()
        # Identical shard MBBs: enlargement ties, load decides.
        mbb_lo = np.zeros((3, 2))
        mbb_hi = np.full((3, 2), 50.0)
        loads = np.array([9, 2, 5], dtype=np.int64)
        lo = np.array([[10.0, 10.0]])
        hi = np.array([[11.0, 11.0]])
        assert p.route(lo, hi, mbb_lo, mbb_hi, loads).tolist() == [1]


# ----------------------------------------------------------------------
# ShardedIndex
# ----------------------------------------------------------------------
class TestShardedIndex:
    def test_rejects_bad_shard_count(self):
        with pytest.raises(ConfigurationError, match="n_shards"):
            ShardedIndex(_grid_store(), n_shards=0)

    def test_query_before_build_raises(self):
        engine = ShardedIndex(_grid_store(), n_shards=2)
        with pytest.raises(ConfigurationError, match="build"):
            engine.query(_window((0.0, 0.0), (5.0, 5.0)))

    def test_pruning_counters(self):
        engine = ShardedIndex(_grid_store(10), n_shards=4, partitioner="str")
        engine.build()
        # A query covering one corner tile: 1 visit, 3 pruned.
        hits = engine.query(_window((0.0, 0.0), (5.0, 5.0)))
        assert hits.size > 0
        assert engine.stats.shards_visited == 1
        assert engine.stats.shards_pruned == 3
        # A full-universe query visits everything.
        engine.query(_window((-1.0, -1.0), (95.0, 95.0), seq=1))
        assert engine.stats.shards_visited == 1 + 4
        assert engine.stats.shards_pruned == 3

    def test_empty_shards_are_pruned(self):
        store = _grid_store(2)  # 4 rows
        engine = ShardedIndex(store, n_shards=6, partitioner="str")
        engine.build()
        engine.query(_window((-1.0, -1.0), (25.0, 25.0)))
        assert engine.stats.shards_visited == 4
        assert engine.stats.shards_pruned == 2

    def test_ownership_routing_insert_and_delete(self):
        engine = ShardedIndex(_grid_store(10), n_shards=4, partitioner="str")
        engine.build()
        sizes_before = engine.shard_sizes()
        # Insert a box deep inside one corner tile.
        new = engine.insert(np.array([[2.0, 2.0]]), np.array([[3.0, 3.0]]))
        sid = engine.owner_of(int(new[0]))
        # shard_sizes counts *owned* rows, so the insert shows up even
        # while it is still buffered in the shard index.
        assert engine.shard_sizes()[sid] == sizes_before[sid] + 1
        # The owning shard is the one whose tile contains the box.
        probe = engine.query(_window((1.5, 1.5), (3.5, 3.5)))
        assert int(new[0]) in probe
        # Delete routes to that shard and clears ownership.
        assert engine.delete(new) == 1
        with pytest.raises(DatasetError, match="not live"):
            engine.owner_of(int(new[0]))
        assert int(new[0]) not in engine.query(_window((1.5, 1.5), (3.5, 3.5), seq=2))

    def test_insert_expands_owner_mbb_for_pruning(self):
        engine = ShardedIndex(_grid_store(10), n_shards=4, partitioner="str")
        engine.build()
        # Far outside every tile: still must be routed, owned, and found
        # even while buffered (MBB expands immediately).
        new = engine.insert(np.array([[500.0, 500.0]]), np.array([[501.0, 501.0]]))
        hits = engine.query(_window((499.0, 499.0), (502.0, 502.0)))
        assert np.array_equal(np.sort(hits), np.sort(new))

    def test_delete_unknown_id_raises_and_changes_nothing(self):
        engine = ShardedIndex(_grid_store(4), n_shards=2)
        engine.build()
        before = engine.store.live_count
        with pytest.raises(DatasetError, match="not live"):
            engine.delete(np.array([999]))
        assert engine.store.live_count == before
        engine.validate_routing()

    def test_insert_colliding_live_id_rejected(self):
        engine = ShardedIndex(_grid_store(4), n_shards=2)
        engine.build()
        new = engine.insert(np.array([[1.0, 1.0]]), np.array([[2.0, 2.0]]))
        with pytest.raises(DatasetError, match="collide"):
            engine.insert(np.array([[5.0, 5.0]]), np.array([[6.0, 6.0]]), ids=new)

    def test_pre_build_updates_flow_into_partitioning(self):
        store = _grid_store(4)
        engine = ShardedIndex(store, n_shards=2)
        new = engine.insert(np.array([[70.0, 70.0]]), np.array([[71.0, 71.0]]))
        engine.delete(new)
        engine.build()
        engine.validate_routing()
        full = engine.query(_window((-1.0, -1.0), (100.0, 100.0)))
        assert full.size == 16  # 4x4 grid, insert+delete cancelled out

    def test_merge_deduplicates(self):
        a = np.array([3, 1, 7], dtype=np.int64)
        b = np.array([7, 2], dtype=np.int64)
        merged = ShardedIndex._merge([a, b])
        assert merged.tolist() == [1, 2, 3, 7]
        # Single contributing shard passes through unsorted and uncopied.
        assert ShardedIndex._merge([a]) is a
        assert ShardedIndex._merge([]).size == 0

    def test_immutable_factory_supports_queries_but_rejects_updates(self):
        class FrozenScan(SpatialIndex):
            name = "FrozenScan"

            def _candidates(self, query):
                return None  # refine tests the whole store in place

        engine = ShardedIndex(
            _grid_store(4), n_shards=2, index_factory=FrozenScan
        )
        engine.build()
        assert engine.query(_window((-1.0, -1.0), (100.0, 100.0))).size == 16
        with pytest.raises(ConfigurationError, match="does not support"):
            engine.insert(np.array([[1.0, 1.0]]), np.array([[2.0, 2.0]]))
        with pytest.raises(ConfigurationError, match="does not support"):
            engine.delete(np.array([0]))
        # The rejected updates never touched the ingest mirror: the
        # engine keeps serving instead of failing epoch checks.
        assert engine.store.epoch == 0
        assert engine.query(_window((-1.0, -1.0), (100.0, 100.0), seq=1)).size == 16

    def test_factory_must_use_given_store(self):
        other = _grid_store(3)
        engine = ShardedIndex(
            _grid_store(4), n_shards=2, index_factory=lambda s: ScanIndex(other)
        )
        with pytest.raises(ConfigurationError, match="shard store"):
            engine.build()

    def test_fleet_work_counters_roll_up(self):
        engine = ShardedIndex(
            _grid_store(10),
            n_shards=4,
            index_factory=lambda s: QuasiiIndex(s, QuasiiConfig(2, (8, 4))),
        )
        engine.build()
        engine.query(_window((-1.0, -1.0), (95.0, 95.0)))
        assert engine.stats.objects_tested > 0
        assert engine.stats.cracks > 0
        # Insert enough to trigger a shard-level lazy merge on next query.
        engine.insert(np.array([[2.0, 2.0]] * 3), np.array([[3.0, 3.0]] * 3))
        engine.query(_window((-1.0, -1.0), (95.0, 95.0), seq=1))
        assert engine.stats.merges >= 1
        # Roll-up survives an outer reset without double counting.
        engine.stats.reset()
        engine.sync_shard_work()
        assert engine.stats.merges == 0

    def test_balance_factor_and_memory(self):
        engine = ShardedIndex(_grid_store(10), n_shards=4)
        engine.build()
        assert engine.balance_factor() == pytest.approx(1.0, abs=0.2)
        assert engine.memory_bytes() > 0

    def test_out_of_band_store_mutation_fails_loudly(self):
        engine = ShardedIndex(_grid_store(4), n_shards=2)
        engine.build()
        engine.store.append(np.array([[1.0, 1.0]]), np.array([[2.0, 2.0]]))
        with pytest.raises(Exception, match="epoch"):
            engine.query(_window((0.0, 0.0), (5.0, 5.0)))


# ----------------------------------------------------------------------
# QueryExecutor
# ----------------------------------------------------------------------
class TestQueryExecutor:
    @pytest.fixture(scope="class")
    def dataset(self):
        return make_uniform(5_000, seed=3)

    def _engine(self, dataset, **kw):
        kw.setdefault("n_shards", 4)
        return ShardedIndex(dataset.store.copy(), **kw)

    def test_rejects_negative_workers(self, dataset):
        with pytest.raises(ConfigurationError, match="max_workers"):
            QueryExecutor(self._engine(dataset), max_workers=-1)

    def test_default_workers_capped_by_shards(self, dataset):
        ex = QueryExecutor(self._engine(dataset, n_shards=2))
        assert 1 <= ex.max_workers <= 2

    def test_parallel_matches_sequential_and_scan(self, dataset):
        queries = uniform_workload(dataset.universe, 40, 1e-3, seed=5)
        scan = ScanIndex(dataset.store.copy())
        expected = [np.sort(scan.query(q)) for q in queries]
        seq = QueryExecutor(self._engine(dataset), max_workers=1).run(queries)
        # Pinned: this test asserts the thread path's mode label, so a
        # QUASII_EXECUTOR_BACKEND=processes environment must not retarget it.
        par = QueryExecutor(
            self._engine(dataset), max_workers=4, backend="threads"
        ).run(queries)
        assert seq.mode == "sequential" and par.mode == "parallel"
        for got_s, got_p, want in zip(seq.results, par.results, expected):
            assert np.array_equal(np.sort(got_s), want)
            assert np.array_equal(np.sort(got_p), want)
        assert par.n_queries == len(queries)
        assert sum(par.shard_queries) >= len(queries)

    def test_parallel_counters_match_sequential(self, dataset):
        queries = uniform_workload(dataset.universe, 25, 1e-3, seed=6)
        e_seq = self._engine(dataset)
        e_par = self._engine(dataset)
        QueryExecutor(e_seq, max_workers=1).run(queries)
        QueryExecutor(e_par, max_workers=3, backend="threads").run(queries)
        assert e_par.stats.queries == e_seq.stats.queries == len(queries)
        assert e_par.stats.shards_visited == e_seq.stats.shards_visited
        assert e_par.stats.shards_pruned == e_seq.stats.shards_pruned
        assert e_par.stats.results_returned == e_seq.stats.results_returned

    def test_builds_engine_on_first_use(self, dataset):
        engine = self._engine(dataset)
        assert not engine.is_built
        result = QueryExecutor(engine, max_workers=2).run(
            uniform_workload(dataset.universe, 3, 1e-3, seed=7)
        )
        assert engine.is_built
        assert result.n_queries == 3

    def test_parallel_rejects_wrong_dimension_queries(self, dataset):
        from repro.errors import QueryError

        bad = RangeQuery(Box((0.0,), (1.0,)), seq=0)
        with pytest.raises(QueryError, match="dims"):
            QueryExecutor(self._engine(dataset), max_workers=4).run([bad])

    def test_empty_batch(self, dataset):
        result = QueryExecutor(self._engine(dataset), max_workers=2).run([])
        assert result.n_queries == 0
        assert result.throughput() == float("inf") or result.seconds >= 0

    def test_quasii_shards_stay_structurally_valid_after_parallel_run(
        self, dataset
    ):
        engine = ShardedIndex(
            dataset.store.copy(),
            n_shards=4,
            index_factory=lambda s: QuasiiIndex(s, tau=16),
        )
        # Pinned to threads: the point is that *driver-side* shard indexes
        # crack concurrently and stay valid (the process backend cracks
        # worker-local indexes instead).
        QueryExecutor(engine, max_workers=4, backend="threads").run(
            uniform_workload(dataset.universe, 30, 1e-2, seed=8)
        )
        for shard in engine.shards:
            shard.index.validate_structure()

    def test_parallel_exposes_shard_and_phase_timings(self, dataset):
        queries = uniform_workload(dataset.universe, 40, 1e-3, seed=9)
        # Pinned: the phase-tiling and same-clock-domain invariants below
        # are the thread backend's contract.
        par = QueryExecutor(
            self._engine(dataset), max_workers=4, backend="threads"
        ).run(queries)
        assert len(par.shard_seconds) == 4
        # Every shard that received a sub-batch self-timed its work.
        for sid, n in enumerate(par.shard_queries):
            if n:
                assert par.shard_seconds[sid] > 0.0
            else:
                assert par.shard_seconds[sid] == 0.0
        # Phase timings tile the batch: route -> fan-out -> merge.
        assert par.route_seconds > 0.0
        assert par.fanout_seconds > 0.0
        assert par.merge_seconds > 0.0
        phases = par.route_seconds + par.fanout_seconds + par.merge_seconds
        assert phases == pytest.approx(par.seconds, rel=0.05)
        # Worker self-timing excludes pool queueing, so each shard's
        # clock fits inside the fan-out phase that contains it.
        assert max(par.shard_seconds) <= par.fanout_seconds * 1.05

    def test_sequential_leaves_timings_zeroed(self, dataset):
        queries = uniform_workload(dataset.universe, 10, 1e-3, seed=10)
        seq = QueryExecutor(self._engine(dataset), max_workers=1).run(queries)
        assert seq.shard_seconds == [0.0] * 4
        assert seq.route_seconds == 0.0
        assert seq.fanout_seconds == 0.0
        assert seq.merge_seconds == 0.0
