"""Unit tests for the Mosaic incremental octree."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.mosaic import MosaicIndex
from repro.baselines.scan import ScanIndex
from repro.datasets import BoxStore, make_uniform
from repro.errors import ConfigurationError
from repro.geometry import Box
from repro.queries import RangeQuery, uniform_workload


class TestConfiguration:
    def test_rejects_bad_args(self):
        ds = make_uniform(10, seed=1)
        with pytest.raises(ConfigurationError):
            MosaicIndex(ds.store, ds.universe, capacity=0)
        with pytest.raises(ConfigurationError):
            MosaicIndex(ds.store, ds.universe, max_depth=0)
        with pytest.raises(ConfigurationError):
            MosaicIndex(ds.store, Box.unit(2))

    def test_starts_with_one_partition(self):
        ds = make_uniform(100, seed=2)
        idx = MosaicIndex(ds.store, ds.universe)
        assert idx.partition_count() == 1
        assert idx.max_depth_reached() == 0


class TestIncrementalSplitting:
    def test_first_query_splits_root(self):
        ds = make_uniform(1_000, seed=3)
        idx = MosaicIndex(ds.store, ds.universe)
        q = uniform_workload(ds.universe, 1, 1e-3, seed=4)[0]
        idx.query(q)
        assert idx.partition_count() == 8, "root splits into 2^3 children"
        assert idx.max_depth_reached() == 1

    def test_one_level_of_deepening_per_query(self):
        ds = make_uniform(5_000, seed=5)
        idx = MosaicIndex(ds.store, ds.universe, capacity=10)
        q = uniform_workload(ds.universe, 1, 1e-4, seed=6)[0]
        for expected_depth in (1, 2, 3):
            idx.query(q)
            assert idx.max_depth_reached() == expected_depth

    def test_small_partitions_stop_splitting(self):
        ds = make_uniform(50, seed=7)
        idx = MosaicIndex(ds.store, ds.universe, capacity=60)
        q = uniform_workload(ds.universe, 1, 1e-2, seed=8)[0]
        idx.query(q)
        assert idx.partition_count() == 1, "root within capacity never splits"

    def test_max_depth_respected_with_duplicates(self):
        lo = np.tile(np.array([[5.0, 5.0, 5.0]]), (200, 1))
        store = BoxStore(lo, lo + 0.1)
        universe = Box((0.0,) * 3, (10.0,) * 3)
        idx = MosaicIndex(store, universe, capacity=10, max_depth=4)
        q = RangeQuery(Box((4.0,) * 3, (6.0,) * 3))
        for _ in range(10):
            assert idx.query(q).size == 200
        assert idx.max_depth_reached() <= 4

    def test_repartitioning_cost_counted(self):
        # The paper's criticism: frequently queried data is reassigned
        # multiple times. rows_reorganized must exceed the region's size.
        ds = make_uniform(5_000, seed=9)
        idx = MosaicIndex(ds.store, ds.universe, capacity=10)
        q = uniform_workload(ds.universe, 1, 1e-4, seed=10)[0]
        for _ in range(5):
            idx.query(q)
        assert idx.stats.rows_reorganized > ds.n, (
            "top-down strategy re-partitions the same data repeatedly"
        )


class TestCorrectness:
    def test_matches_scan_during_refinement(self):
        ds = make_uniform(2_000, seed=11)
        idx = MosaicIndex(ds.store, ds.universe, capacity=30)
        scan = ScanIndex(ds.store)
        for q in uniform_workload(ds.universe, 40, 1e-2, seed=12):
            assert np.array_equal(np.sort(idx.query(q)), np.sort(scan.query(q)))

    def test_straddling_object_found(self):
        lo = np.array([[4.0, 4.0, 4.0]])
        hi = np.array([[6.0, 6.0, 6.0]])  # centered on the root midpoint
        store = BoxStore(lo, hi)
        universe = Box((0.0,) * 3, (10.0,) * 3)
        idx = MosaicIndex(store, universe, capacity=0 + 1)
        # Query only one corner region after forcing splits.
        for _ in range(3):
            hits = idx.query(RangeQuery(Box((5.5,) * 3, (5.9,) * 3)))
            assert hits.tolist() == [0]

    def test_rows_conserved_across_splits(self):
        ds = make_uniform(1_000, seed=13)
        idx = MosaicIndex(ds.store, ds.universe, capacity=5)
        for q in uniform_workload(ds.universe, 10, 1e-2, seed=14):
            idx.query(q)
        # Sum of leaf rows equals n and covers every row exactly once.
        rows = []
        stack = [idx._root]
        while stack:
            part = stack.pop()
            if part.is_leaf:
                rows.extend(part.rows.tolist())
            else:
                stack.extend(part.children)
        assert sorted(rows) == list(range(ds.n))

    def test_memory_grows_with_partitions(self):
        ds = make_uniform(1_000, seed=15)
        idx = MosaicIndex(ds.store, ds.universe, capacity=10)
        before = idx.memory_bytes()
        for q in uniform_workload(ds.universe, 5, 1e-2, seed=16):
            idx.query(q)
        assert idx.memory_bytes() > before
