"""Unit tests for the QUASII index: refinement mechanics and invariants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import QuasiiConfig, QuasiiIndex
from repro.datasets import BoxStore, make_uniform
from repro.geometry import Box
from repro.queries import RangeQuery, uniform_workload


def grid_store_2d(n_side: int = 8, extent: float = 0.4) -> BoxStore:
    """n_side x n_side lattice of small boxes in [0, n_side)^2."""
    xs, ys = np.meshgrid(np.arange(n_side), np.arange(n_side), indexing="ij")
    lo = np.stack([xs.ravel(), ys.ravel()], axis=1).astype(np.float64)
    return BoxStore(lo, lo + extent)


class TestInitialState:
    def test_starts_with_single_slice(self):
        store = grid_store_2d()
        idx = QuasiiIndex(store, QuasiiConfig(2, (8, 4)))
        assert idx.slice_counts() == [1, 0]

    def test_build_is_noop(self):
        store = grid_store_2d()
        idx = QuasiiIndex(store, QuasiiConfig(2, (8, 4)))
        before = store.ids.copy()
        idx.build()
        assert idx.is_built
        assert np.array_equal(store.ids, before)

    def test_default_config_from_store(self):
        ds = make_uniform(5_000, seed=1)
        idx = QuasiiIndex(ds.store)
        assert idx.config.ndim == 3
        assert idx.config.leaf_threshold == 60

    def test_dim_mismatch_rejected(self):
        store = grid_store_2d()
        with pytest.raises(ValueError):
            QuasiiIndex(store, QuasiiConfig(3, (10, 10, 10)))


class TestFirstQueryRefinement:
    def test_first_query_slices_three_ways_on_x(self):
        store = grid_store_2d()
        idx = QuasiiIndex(store, QuasiiConfig(2, (16, 4)))
        q = RangeQuery(Box((2.5, 2.5), (4.9, 4.9)))
        idx.query(q)
        # Interior query window: left / middle / right x-slices exist.
        assert idx.slice_counts()[0] >= 3
        idx.validate_structure()

    def test_data_array_physically_reorganized(self):
        store = grid_store_2d()
        before = store.ids.copy()
        idx = QuasiiIndex(store, QuasiiConfig(2, (16, 4)))
        idx.query(RangeQuery(Box((2.5, 2.5), (4.9, 4.9))))
        assert not np.array_equal(store.ids, before), "cracking must reorder"

    def test_multiset_preserved(self):
        store = grid_store_2d()
        fp = store.fingerprint()
        idx = QuasiiIndex(store, QuasiiConfig(2, (16, 4)))
        for q in uniform_workload(Box((0.0, 0.0), (8.0, 8.0)), 20, 0.05, seed=1):
            idx.query(q)
        assert store.fingerprint() == fp

    def test_query_covering_everything(self):
        store = grid_store_2d()
        idx = QuasiiIndex(store, QuasiiConfig(2, (16, 4)))
        hits = idx.query(RangeQuery(Box((-1.0, -1.0), (9.0, 9.0))))
        assert sorted(hits.tolist()) == list(range(64))
        idx.validate_structure()

    def test_query_missing_everything(self):
        store = grid_store_2d()
        idx = QuasiiIndex(store, QuasiiConfig(2, (16, 4)))
        hits = idx.query(RangeQuery(Box((100.0, 100.0), (101.0, 101.0))))
        assert hits.size == 0


class TestLowerCoordinateAssignment:
    def test_object_straddling_cut_found(self):
        # One wide object whose lower corner is left of the query window
        # but which overlaps it — the query-extension path must find it.
        lo = np.array([[0.0, 0.0], [5.0, 0.0], [9.0, 0.0], [2.0, 0.0]])
        hi = np.array([[4.5, 1.0], [6.0, 1.0], [9.5, 1.0], [2.5, 1.0]])
        store = BoxStore(lo, hi)
        idx = QuasiiIndex(store, QuasiiConfig(2, (1, 1)))
        hits = idx.query(RangeQuery(Box((4.0, 0.0), (5.5, 1.0))))
        assert sorted(hits.tolist()) == [0, 1]
        idx.validate_structure()

    def test_repeat_after_refinement_still_correct(self):
        lo = np.array([[0.0, 0.0], [5.0, 0.0], [9.0, 0.0], [2.0, 0.0]])
        hi = np.array([[4.5, 1.0], [6.0, 1.0], [9.5, 1.0], [2.5, 1.0]])
        store = BoxStore(lo, hi)
        idx = QuasiiIndex(store, QuasiiConfig(2, (1, 1)))
        q = RangeQuery(Box((4.0, 0.0), (5.5, 1.0)))
        first = np.sort(idx.query(q))
        second = np.sort(idx.query(q))
        assert np.array_equal(first, second)


class TestConvergence:
    def test_repeated_query_stops_cracking(self):
        ds = make_uniform(4_000, seed=3)
        idx = QuasiiIndex(ds.store)
        q = uniform_workload(ds.universe, 1, 1e-3, seed=4)[0]
        idx.query(q)
        for _ in range(3):
            idx.query(q)
        cracks_after_warmup = idx.stats.cracks
        idx.query(q)
        assert idx.stats.cracks == cracks_after_warmup, (
            "a converged region must not be reorganized again"
        )

    def test_rows_reorganized_decreases_over_repeats(self):
        ds = make_uniform(4_000, seed=5)
        idx = QuasiiIndex(ds.store)
        q = uniform_workload(ds.universe, 1, 1e-2, seed=6)[0]
        idx.query(q)
        first = idx.stats.rows_reorganized
        idx.query(q)
        second = idx.stats.rows_reorganized - first
        assert second < first / 2

    def test_final_leaves_obey_tau(self):
        ds = make_uniform(4_000, seed=7)
        idx = QuasiiIndex(ds.store, tau=32)
        for q in uniform_workload(ds.universe, 30, 1e-3, seed=8):
            idx.query(q)
        idx.validate_structure()  # includes the tau check on final slices


class TestStatsAndIntrospection:
    def test_counters_move(self):
        ds = make_uniform(2_000, seed=9)
        idx = QuasiiIndex(ds.store)
        q = uniform_workload(ds.universe, 1, 1e-2, seed=10)[0]
        idx.query(q)
        assert idx.stats.queries == 1
        assert idx.stats.cracks > 0
        assert idx.stats.rows_reorganized > 0
        assert idx.stats.objects_tested > 0

    def test_memory_grows_with_refinement(self):
        ds = make_uniform(2_000, seed=11)
        idx = QuasiiIndex(ds.store)
        before = idx.memory_bytes()
        for q in uniform_workload(ds.universe, 10, 1e-2, seed=12):
            idx.query(q)
        assert idx.memory_bytes() > before

    def test_slice_counts_levels(self):
        ds = make_uniform(2_000, seed=13)
        idx = QuasiiIndex(ds.store)
        for q in uniform_workload(ds.universe, 5, 1e-2, seed=14):
            idx.query(q)
        counts = idx.slice_counts()
        assert len(counts) == 3
        assert counts[0] >= 1


class TestDegenerateData:
    def test_all_identical_lower_coords(self):
        # Lower coordinates identical in x: x-level cannot discriminate;
        # the index must still answer correctly via deeper levels.
        n = 40
        lo = np.zeros((n, 2))
        lo[:, 1] = np.arange(n, dtype=np.float64)
        store = BoxStore(lo, lo + 0.5)
        idx = QuasiiIndex(store, QuasiiConfig(2, (8, 4)))
        hits = idx.query(RangeQuery(Box((0.0, 10.0), (0.5, 20.0))))
        assert sorted(hits.tolist()) == list(range(10, 21))
        idx.validate_structure()

    def test_single_object(self):
        store = BoxStore(np.array([[1.0, 1.0]]), np.array([[2.0, 2.0]]))
        idx = QuasiiIndex(store, QuasiiConfig(2, (4, 2)))
        assert idx.query(RangeQuery(Box((0.0, 0.0), (3.0, 3.0)))).tolist() == [0]
        assert idx.query(RangeQuery(Box((5.0, 5.0), (6.0, 6.0)))).size == 0

    def test_duplicate_objects(self):
        lo = np.tile(np.array([[3.0, 3.0]]), (100, 1))
        store = BoxStore(lo, lo + 1.0)
        idx = QuasiiIndex(store, QuasiiConfig(2, (8, 4)))
        hits = idx.query(RangeQuery(Box((2.0, 2.0), (5.0, 5.0))))
        assert hits.size == 100
        idx.validate_structure()
