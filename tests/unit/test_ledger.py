"""Direct unit coverage for :class:`UpdateLedger`.

The ledger is the property suites' oracle *and* (since the replication
tier) the per-shard replication stream, so its own edges need direct
tests rather than indirect coverage: the delete-of-never-inserted and
reinsert-after-delete edges of ``live_ids``/``expected_result``, the
all-or-nothing batch validation, and the op-log replay/truncate APIs
recovery depends on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import BoxStore
from repro.errors import DatasetError
from repro.updates import UpdateLedger


def _boxes(rows):
    lo = np.array([[x, y] for x, y, _ in rows], dtype=np.float64)
    hi = lo + np.array([[s, s] for _, _, s in rows], dtype=np.float64)
    return lo, hi


class TestLiveIdsEdges:
    def test_delete_of_never_inserted_id_raises(self):
        ledger = UpdateLedger()
        lo, hi = _boxes([(0, 0, 1), (5, 5, 1)])
        ledger.record_insert(lo, hi, np.array([3, 4]))
        with pytest.raises(DatasetError, match="unknown id 9"):
            ledger.record_delete(np.array([9]))
        # All-or-nothing: a batch with one unknown id removes nothing.
        with pytest.raises(DatasetError, match="unknown id 9"):
            ledger.record_delete(np.array([3, 9]))
        assert np.array_equal(ledger.live_ids(), np.array([3, 4]))

    def test_delete_twice_raises_second_time(self):
        ledger = UpdateLedger()
        lo, hi = _boxes([(0, 0, 1)])
        ledger.record_insert(lo, hi, np.array([7]))
        ledger.record_delete(np.array([7]))
        assert ledger.live_ids().size == 0
        with pytest.raises(DatasetError, match="unknown id 7"):
            ledger.record_delete(np.array([7]))

    def test_reinsert_after_delete_is_live_again(self):
        ledger = UpdateLedger()
        lo, hi = _boxes([(0, 0, 1)])
        ledger.record_insert(lo, hi, np.array([5]))
        ledger.record_delete(np.array([5]))
        lo2, hi2 = _boxes([(9, 9, 2)])
        ledger.record_insert(lo2, hi2, np.array([5]))
        assert np.array_equal(ledger.live_ids(), np.array([5]))
        # The reinserted geometry (not the original) answers windows.
        hits = ledger.expected_result(np.array([8.0, 8.0]), np.array([12.0, 12.0]))
        assert np.array_equal(hits, np.array([5]))
        miss = ledger.expected_result(np.array([-1.0, -1.0]), np.array([2.0, 2.0]))
        assert miss.size == 0

    def test_duplicate_insert_is_all_or_nothing(self):
        ledger = UpdateLedger()
        lo, hi = _boxes([(0, 0, 1)])
        ledger.record_insert(lo, hi, np.array([1]))
        blo, bhi = _boxes([(2, 2, 1), (3, 3, 1)])
        with pytest.raises(DatasetError, match="already holds id 1"):
            ledger.record_insert(blo, bhi, np.array([2, 1]))
        # Neither row of the rejected batch landed (id 2 stayed unknown).
        assert np.array_equal(ledger.live_ids(), np.array([1]))
        assert ledger.log_length == 1

    def test_duplicate_within_one_batch_raises(self):
        ledger = UpdateLedger()
        blo, bhi = _boxes([(2, 2, 1), (3, 3, 1)])
        with pytest.raises(DatasetError, match="already holds id 6"):
            ledger.record_insert(blo, bhi, np.array([6, 6]))
        assert len(ledger) == 0


class TestExpectedResultEdges:
    def test_empty_ledger_returns_empty(self):
        ledger = UpdateLedger()
        out = ledger.expected_result(np.array([0.0, 0.0]), np.array([9.0, 9.0]))
        assert out.size == 0 and out.dtype == np.int64

    def test_touching_edges_count_as_intersecting(self):
        ledger = UpdateLedger()
        lo, hi = _boxes([(0, 0, 2)])  # box [0,2]^2
        ledger.record_insert(lo, hi, np.array([11]))
        # Window starting exactly at the box's upper corner touches it.
        hits = ledger.expected_result(np.array([2.0, 2.0]), np.array([5.0, 5.0]))
        assert np.array_equal(hits, np.array([11]))
        # Strictly beyond misses.
        miss = ledger.expected_result(np.array([2.1, 2.1]), np.array([5.0, 5.0]))
        assert miss.size == 0

    def test_deleted_rows_never_match(self):
        store = BoxStore(np.zeros((3, 2)), np.ones((3, 2)))
        ledger = UpdateLedger(store)
        ledger.record_delete(np.array([1]))
        hits = ledger.expected_result(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        assert np.array_equal(hits, np.array([0, 2]))


class TestReplayAndTruncate:
    def _scripted_ledger(self):
        store = BoxStore(
            np.array([[0.0, 0.0], [10.0, 10.0]]),
            np.array([[1.0, 1.0], [11.0, 11.0]]),
        )
        ledger = UpdateLedger(store)
        lo, hi = _boxes([(5, 5, 1), (20, 20, 2)])
        ledger.record_insert(lo, hi, np.array([2, 3]))
        ledger.record_delete(np.array([0, 3]))
        return store, ledger

    def test_rebuild_store_matches_ledger(self):
        _, ledger = self._scripted_ledger()
        assert ledger.log_length == 2
        rebuilt = ledger.rebuild_store()
        ledger.assert_matches(rebuilt)
        assert np.array_equal(
            np.sort(rebuilt.ids[rebuilt.live_rows()]), ledger.live_ids()
        )

    def test_rebuild_matches_store_that_applied_same_stream(self):
        store, ledger = self._scripted_ledger()
        lo, hi = _boxes([(5, 5, 1), (20, 20, 2)])
        store.append(lo, hi, np.array([2, 3]))
        store.delete_ids(np.array([0, 3]))
        rebuilt = ledger.rebuild_store()
        assert rebuilt.live_fingerprint() == store.live_fingerprint()

    def test_truncate_folds_log_into_base(self):
        _, ledger = self._scripted_ledger()
        live_before = ledger.live_ids()
        dropped = ledger.truncate()
        assert dropped == 2 and ledger.log_length == 0
        assert np.array_equal(ledger.live_ids(), live_before)
        rebuilt = ledger.rebuild_store()
        ledger.assert_matches(rebuilt)

    def test_replay_handles_reinsert_after_delete(self):
        ledger = UpdateLedger()
        lo, hi = _boxes([(0, 0, 1)])
        ledger.record_insert(lo, hi, np.array([4]))
        ledger.record_delete(np.array([4]))
        lo2, hi2 = _boxes([(7, 7, 1)])
        ledger.record_insert(lo2, hi2, np.array([4]))
        rebuilt = ledger.rebuild_store()
        ledger.assert_matches(rebuilt)
        assert np.array_equal(ledger.live_ids(), np.array([4]))

    def test_rebuild_without_any_rows_raises(self):
        with pytest.raises(DatasetError, match="never saw a row"):
            UpdateLedger().rebuild_store()

    def test_empty_batches_do_not_grow_the_log(self):
        _, ledger = self._scripted_ledger()
        before = ledger.log_length
        ledger.record_insert(
            np.empty((0, 2)), np.empty((0, 2)), np.empty(0, dtype=np.int64)
        )
        ledger.record_delete(np.empty(0, dtype=np.int64))
        assert ledger.log_length == before
