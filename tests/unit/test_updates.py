"""Unit tests for the updates package: buffer, ledger, executor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import MosaicIndex, ScanIndex
from repro.datasets import BoxStore, make_uniform
from repro.errors import ConfigurationError, DatasetError
from repro.queries import mixed_workload
from repro.queries.workloads import WorkloadOp
from repro.updates import (
    UpdateBuffer,
    UpdateLedger,
    resolve_delete_victims,
    run_mixed_workload,
)


def _store(n: int = 5, ndim: int = 2, seed: int = 0) -> BoxStore:
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, 50, size=(n, ndim))
    return BoxStore(lo, lo + rng.uniform(0, 5, size=(n, ndim)))


class TestUpdateBuffer:
    def test_add_reserves_ids_from_store(self):
        store = _store(4)
        buf = UpdateBuffer(store)
        ids = buf.add(np.array([[1.0, 1.0]]), np.array([[2.0, 2.0]]))
        assert ids.tolist() == [4]
        assert len(buf) == 1
        # The reservation is visible to the store's allocator.
        assert store.reserve_ids(1).tolist() == [5]

    def test_discard_removes_only_matching_rows(self):
        store = _store(4)
        buf = UpdateBuffer(store)
        ids = buf.add(
            np.array([[1.0, 1.0], [3.0, 3.0]]),
            np.array([[2.0, 2.0], [4.0, 4.0]]),
        )
        removed = buf.discard(np.array([ids[0], 99]))
        assert removed.tolist() == [ids[0]]
        assert len(buf) == 1 and buf.ids.tolist() == [ids[1]]

    def test_drain_empties_the_buffer(self):
        store = _store(4)
        buf = UpdateBuffer(store)
        buf.add(np.array([[1.0, 1.0]]), np.array([[2.0, 2.0]]))
        lo, hi, ids = buf.drain()
        assert lo.shape == (1, 2) and ids.tolist() == [4]
        assert len(buf) == 0
        lo2, _, ids2 = buf.drain()
        assert lo2.shape == (0, 2) and ids2.size == 0

    def test_memory_bytes_tracks_staged_rows(self):
        store = _store(4)
        buf = UpdateBuffer(store)
        empty = buf.memory_bytes()
        buf.add(np.array([[1.0, 1.0]]), np.array([[2.0, 2.0]]))
        assert buf.memory_bytes() > empty


class TestUpdateLedger:
    def test_seeded_from_store_and_matches(self):
        store = _store(5)
        ledger = UpdateLedger(store)
        assert len(ledger) == 5
        assert ledger.matches_store(store)
        store.delete_ids(np.array([2]))
        assert not ledger.matches_store(store)
        ledger.record_delete(np.array([2]))
        assert ledger.matches_store(store)

    def test_insert_and_delete_bookkeeping(self):
        ledger = UpdateLedger()
        ledger.record_insert(
            np.array([[1.0, 1.0]]), np.array([[2.0, 2.0]]), np.array([7])
        )
        assert ledger.live_ids().tolist() == [7]
        with pytest.raises(DatasetError, match="already holds"):
            ledger.record_insert(
                np.array([[1.0, 1.0]]), np.array([[2.0, 2.0]]), np.array([7])
            )
        ledger.record_delete(np.array([7]))
        assert len(ledger) == 0
        with pytest.raises(DatasetError, match="unknown id"):
            ledger.record_delete(np.array([7]))

    def test_expected_result_is_a_window_oracle(self):
        ledger = UpdateLedger()
        ledger.record_insert(
            np.array([[0.0, 0.0], [10.0, 10.0]]),
            np.array([[1.0, 1.0], [11.0, 11.0]]),
            np.array([1, 2]),
        )
        hits = ledger.expected_result(np.array([0.5, 0.5]), np.array([5.0, 5.0]))
        assert hits.tolist() == [1]


class TestExecutor:
    def test_victims_deterministic_and_clamped(self):
        live = np.array([5, 1, 9, 3])
        a = resolve_delete_victims(live, 2, seq=4, victim_seed=11)
        b = resolve_delete_victims(live[::-1].copy(), 2, seq=4, victim_seed=11)
        assert np.array_equal(a, b)  # order of the live set is irrelevant
        everything = resolve_delete_victims(live, 99, seq=0, victim_seed=0)
        assert sorted(everything.tolist()) == [1, 3, 5, 9]
        none = resolve_delete_victims(np.empty(0, dtype=np.int64), 3, 0, 0)
        assert none.size == 0

    def test_rejects_non_mutable_index(self):
        ds = make_uniform(200, ndim=2, seed=5)
        mosaic = MosaicIndex(ds.store.copy(), ds.universe, capacity=16)
        with pytest.raises(ConfigurationError, match="does not support updates"):
            run_mixed_workload(mosaic, [])

    def test_run_counts_and_results(self):
        ds = make_uniform(400, ndim=2, seed=5)
        ops = mixed_workload(
            ds.universe, n_ops=60, write_ratio=0.4, batch_size=3,
            volume_fraction=1e-2, seed=2,
        )
        result = run_mixed_workload(ScanIndex(ds.store.copy()), ops, victim_seed=7)
        assert result.n_ops == len(ops)
        assert result.kind_count("query") == len(result.query_results)
        n_inserts = sum(o.lo.shape[0] for o in ops if o.kind == "insert")
        assert result.inserts == n_inserts
        assert result.final_live == 400 + result.inserts - result.deletes
        assert result.total_seconds() > 0
        assert result.throughput() > 0

    def test_unknown_op_kind_rejected(self):
        ds = make_uniform(50, ndim=2, seed=5)
        bogus = WorkloadOp("compact", 0)
        with pytest.raises(ConfigurationError, match="unknown workload op"):
            run_mixed_workload(ScanIndex(ds.store.copy()), [bogus])


class TestMixedWorkloadGenerator:
    def test_ratio_bounds_validated(self):
        ds = make_uniform(50, ndim=2, seed=5)
        with pytest.raises(ConfigurationError):
            mixed_workload(ds.universe, write_ratio=1.5)
        with pytest.raises(ConfigurationError):
            mixed_workload(ds.universe, delete_fraction=-0.1)
        with pytest.raises(ConfigurationError):
            mixed_workload(ds.universe, batch_size=0)
        with pytest.raises(ConfigurationError):
            mixed_workload(ds.universe, n_ops=0)

    def test_pure_read_and_pure_write_extremes(self):
        ds = make_uniform(50, ndim=2, seed=5)
        reads = mixed_workload(ds.universe, n_ops=40, write_ratio=0.0, seed=1)
        assert all(o.kind == "query" for o in reads)
        writes = mixed_workload(ds.universe, n_ops=40, write_ratio=1.0, seed=1)
        assert all(o.kind in ("insert", "delete") for o in writes)

    def test_deterministic_given_seed(self):
        ds = make_uniform(50, ndim=2, seed=5)
        a = mixed_workload(ds.universe, n_ops=30, write_ratio=0.5, seed=9)
        b = mixed_workload(ds.universe, n_ops=30, write_ratio=0.5, seed=9)
        assert [o.kind for o in a] == [o.kind for o in b]
        for x, y in zip(a, b):
            if x.kind == "insert":
                assert np.array_equal(x.lo, y.lo) and np.array_equal(x.hi, y.hi)
            elif x.kind == "query":
                assert np.array_equal(x.query.lo, y.query.lo)

    def test_inserted_boxes_clipped_to_universe(self):
        ds = make_uniform(50, ndim=2, seed=5)
        ops = mixed_workload(ds.universe, n_ops=200, write_ratio=1.0,
                             delete_fraction=0.0, seed=3)
        uni_lo = np.asarray(ds.universe.lo)
        uni_hi = np.asarray(ds.universe.hi)
        for op in ops:
            assert np.all(op.lo >= uni_lo) and np.all(op.hi <= uni_hi)
            assert np.all(op.lo <= op.hi)
