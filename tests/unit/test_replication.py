"""Unit tests for the replication tier: routing, failover, recovery.

Covers the ISSUE's named cases directly: least-loaded failover routing,
kill-during-write leaving the ledger replayable (see
``test_fault_injection``), double-kill of all replicas raising a clean
error instead of hanging, the no-dead-reads invariant, and ledger-replay
recovery with fingerprint verification.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import ScanIndex
from repro.core import QuasiiConfig, QuasiiIndex
from repro.datasets import BoxStore
from repro.errors import ConfigurationError, ReplicationError, ReproError
from repro.geometry import Box
from repro.queries import RangeQuery
from repro.sharding import (
    MaintenancePolicy,
    MaintenanceScheduler,
    Rebalancer,
    ReplicatedShardedIndex,
    ShardedIndex,
)
from repro.telemetry.events import EVENTS, EventLog


def _grid_store(side: int = 6, spacing: float = 3.0) -> BoxStore:
    xs, ys = np.meshgrid(np.arange(side), np.arange(side), indexing="ij")
    lo = np.column_stack([xs.ravel(), ys.ravel()]).astype(np.float64) * spacing
    return BoxStore(lo, lo + 1.0)


def _small_quasii(store: BoxStore) -> QuasiiIndex:
    return QuasiiIndex(store, QuasiiConfig(2, (8, 4)), max_runs=2)


def _window(lo, hi, seq=0) -> RangeQuery:
    return RangeQuery(Box(tuple(lo), tuple(hi)), seq=seq)


def _full(seq=9999) -> RangeQuery:
    return _window((-1.0, -1.0), (100.0, 100.0), seq=seq)


def _replicated(store=None, **kwargs) -> ReplicatedShardedIndex:
    engine = ReplicatedShardedIndex(
        store if store is not None else _grid_store(),
        index_factory=_small_quasii,
        **kwargs,
    )
    engine.build()
    return engine


class TestBuild:
    def test_every_shard_has_r_identical_replicas(self):
        engine = _replicated(n_shards=2, replication=3)
        assert engine.name == "Replicated[strx2xR3]"
        assert engine.replication_factor == 3
        for shard in engine.shards:
            rs = shard.replica_set
            assert rs.replication == 3
            assert rs.dead_rids() == []
            fps = {r.store.live_fingerprint() for r in rs.replicas}
            assert len(fps) == 1
            # Primary pointer: the shard contract fields alias replica 0.
            assert shard.store is rs.replicas[0].store
            assert shard.index is rs.replicas[0].index

    def test_replication_below_one_rejected(self):
        with pytest.raises(ConfigurationError, match="replication >= 1"):
            ReplicatedShardedIndex(_grid_store(), replication=0)

    def test_replication_error_is_a_repro_error(self):
        assert issubclass(ReplicationError, ReproError)

    def test_r1_engine_answers_queries(self):
        engine = _replicated(n_shards=2, replication=1)
        scan = ScanIndex(
            BoxStore(engine.store.lo.copy(), engine.store.hi.copy())
        )
        q = _window((0.0, 0.0), (8.0, 8.0))
        assert np.array_equal(
            np.sort(engine.query(q)), np.sort(scan.query(q))
        )


class TestRouting:
    def test_pick_chooses_least_loaded_live_replica(self):
        engine = _replicated(n_shards=1, replication=3)
        rs = engine.shards[0].replica_set
        rs.replicas[0].reads_served = 5
        rs.replicas[2].reads_served = 2
        chosen = rs.pick()
        assert chosen is rs.replicas[1]
        assert chosen.reads_served == 1

    def test_ties_break_by_lowest_rid(self):
        engine = _replicated(n_shards=1, replication=3)
        rs = engine.shards[0].replica_set
        assert rs.pick() is rs.replicas[0]

    def test_slow_replica_is_deprioritized_not_excluded(self):
        engine = _replicated(n_shards=1, replication=2)
        rs = engine.shards[0].replica_set
        rs.slow(0, 10.0)
        # Load-scaled: rid 0 serves again once rid 1 has absorbed enough.
        picks = [rs.pick().rid for _ in range(12)]
        assert picks[0] == 1
        assert 0 in picks

    def test_stalled_replica_sits_out_then_returns(self):
        engine = _replicated(n_shards=1, replication=3)
        rs = engine.shards[0].replica_set
        rs.stall(0, 2)
        assert rs.pick().rid != 0
        assert rs.pick().rid != 0
        # Stall drained; rid 0 is now the least-loaded candidate again.
        assert rs.pick().rid == 0

    def test_all_stalled_falls_back_to_live_pool(self):
        engine = _replicated(n_shards=1, replication=2)
        rs = engine.shards[0].replica_set
        rs.stall(0, 5)
        rs.stall(1, 5)
        # A stall delays; it must not fabricate an outage.
        assert rs.pick().alive

    def test_no_read_ever_routes_to_a_dead_replica(self):
        engine = _replicated(n_shards=1, replication=2)
        rs = engine.shards[0].replica_set
        engine.kill_replica(0, 1)
        frozen = rs.replicas[1].reads_served
        for i in range(6):
            engine.query(_window((0.0, 0.0), (9.0, 9.0), seq=i))
        assert rs.replicas[1].reads_served == frozen
        assert rs.replicas[0].reads_served >= 6


class TestFailover:
    def test_kill_of_primary_promotes_and_emits_failover(self):
        events = EventLog()
        engine = _replicated(n_shards=2, replication=2, events=events)
        shard = engine.shards[0]
        old_index = shard.index
        assert engine.kill_replica(0, 0)
        assert shard.index is shard.replica_set.replicas[1].index
        assert shard.index is not old_index
        failovers = events.recent(kind="replica.failover")
        assert len(failovers) == 1
        assert failovers[0].payload == {"sid": 0, "to_rid": 1, "from_rid": 0}

    def test_queries_survive_single_replica_kill(self):
        engine = _replicated(n_shards=2, replication=2)
        scan = ScanIndex(
            BoxStore(engine.store.lo.copy(), engine.store.hi.copy())
        )
        engine.kill_replica(1, 0)
        for i in range(4):
            q = _window((i * 2.0, 0.0), (i * 2.0 + 9.0, 16.0), seq=i)
            assert np.array_equal(
                np.sort(engine.query(q)), np.sort(scan.query(q))
            )

    def test_double_kill_raises_clean_error_not_hang(self):
        engine = _replicated(n_shards=2, replication=2)
        engine.kill_replica(0, 0)
        engine.kill_replica(0, 1)
        assert sorted(engine.dead_replicas()) == [(0, 0), (0, 1)]
        with pytest.raises(
            ReplicationError, match="all 2 replicas are dead"
        ):
            engine.query(_full())
        # Recovery restores service completely.
        assert engine.recover_all() == 2
        assert engine.dead_replicas() == []
        scan = ScanIndex(
            BoxStore(engine.store.lo.copy(), engine.store.hi.copy())
        )
        assert np.array_equal(
            np.sort(engine.query(_full())), np.sort(scan.query(_full()))
        )

    def test_kill_is_idempotent(self):
        engine = _replicated(n_shards=1, replication=2)
        assert engine.kill_replica(0, 1)
        assert not engine.kill_replica(0, 1)


class TestRecovery:
    def test_writes_while_dead_are_recovered_by_replay(self):
        engine = _replicated(n_shards=1, replication=2)
        engine.kill_replica(0, 1)
        blo = np.array([[1.2, 1.2], [7.7, 7.7]])
        bhi = blo + 1.0
        new_ids = engine.insert(blo, bhi)
        engine.delete(np.array([engine.store.ids[0], new_ids[0]]))
        rs = engine.shards[0].replica_set
        assert rs.ledger.log_length >= 2
        engine.recover_replica(0, 1)
        # All live again: identical live multisets, log folded away.
        fps = {r.store.live_fingerprint() for r in rs.replicas}
        assert len(fps) == 1
        assert rs.ledger.log_length == 0
        rs.ledger.assert_matches(rs.replicas[1].store)

    def test_recover_of_live_replica_is_a_noop(self):
        events = EventLog()
        engine = _replicated(n_shards=1, replication=2, events=events)
        rs = engine.shards[0].replica_set
        before = rs.replicas[1]
        assert engine.recover_replica(0, 1) is before
        assert events.recent(kind="replica.recover") == []

    def test_recover_event_carries_replay_depth(self):
        events = EventLog()
        engine = _replicated(n_shards=1, replication=2, events=events)
        engine.kill_replica(0, 1)
        engine.insert(np.array([[2.2, 2.2]]), np.array([[3.0, 3.0]]))
        engine.recover_replica(0, 1)
        (rec,) = events.recent(kind="replica.recover")
        assert rec.payload["sid"] == 0 and rec.payload["rid"] == 1
        assert rec.payload["replayed_ops"] == 1
        assert rec.payload["live_rows"] == engine.store.live_count

    def test_diverged_peer_fails_the_fingerprint_check(self):
        engine = _replicated(n_shards=1, replication=2)
        engine.kill_replica(0, 1)
        rs = engine.shards[0].replica_set
        # Write to the live peer behind the ledger's back (through its
        # index, so its epoch stays consistent): recovery must refuse to
        # certify the rebuilt replica against the diverged peer.
        rs.replicas[0].index.insert(
            np.array([[50.0, 50.0]]), np.array([[51.0, 51.0]]),
            np.array([999]),
        )
        with pytest.raises(ReplicationError, match="diverged from"):
            engine.recover_replica(0, 1)

    def test_recovered_replica_serves_reads(self):
        engine = _replicated(n_shards=1, replication=2)
        engine.kill_replica(0, 1)
        engine.recover_replica(0, 1)
        rs = engine.shards[0].replica_set
        rs.replicas[0].reads_served = 50
        assert rs.pick().rid == 1


class TestMaintenanceIntegration:
    def test_scheduler_heals_replicas_when_policy_allows(self):
        engine = _replicated(n_shards=2, replication=2)
        scheduler = MaintenanceScheduler(
            engine, MaintenancePolicy(check_every=1, recover_replicas=True)
        )
        engine.kill_replica(1, 0)
        scheduler.run()
        assert engine.dead_replicas() == []
        assert scheduler.report.replicas_recovered == 1

    def test_default_policy_leaves_corpses_dead(self):
        engine = _replicated(n_shards=2, replication=2)
        scheduler = MaintenanceScheduler(
            engine, MaintenancePolicy(check_every=1)
        )
        engine.kill_replica(1, 0)
        scheduler.run()
        assert engine.dead_replicas() == [(1, 0)]


class TestRebalancerGate:
    def test_traffic_skew_does_not_retile_a_replicated_engine(self):
        corner = [_window((0.0, 0.0), (2.0, 2.0), seq=i) for i in range(6)]
        rebalancer = Rebalancer(
            min_queries=1, max_query_skew=1.2, min_centroids=2, warmup=0
        )

        plain = ShardedIndex(
            _grid_store(), n_shards=2, index_factory=_small_quasii
        )
        plain.build()
        for q in corner:
            plain.query(q)
        assert rebalancer.drift_reason(plain) == "skew"

        replicated = _replicated(n_shards=2, replication=2)
        for q in corner:
            replicated.query(q)
        assert rebalancer.drift_reason(replicated) is None


class TestCompactionAcrossReplicas:
    def test_compaction_keeps_replicas_in_lockstep(self):
        engine = _replicated(n_shards=2, replication=2)
        victims = engine.store.ids[:8].copy()
        engine.delete(victims)
        engine.compact()
        for shard in engine.shards:
            stores = [r.store for r in shard.replica_set.replicas]
            assert all(s.n_dead == 0 for s in stores)
            assert len({s.live_fingerprint() for s in stores}) == 1


class TestTelemetry:
    def test_all_emitted_kinds_are_canonical(self):
        events = EventLog()
        engine = _replicated(n_shards=2, replication=2, events=events)
        engine.kill_replica(0, 0)
        engine.stall_replica(1, 0, 3)
        engine.slow_replica(1, 1, 2.5)
        engine.recover_replica(0, 0)
        kinds = {r.kind for r in events.recent()}
        assert kinds == {
            "replica.kill",
            "replica.stall",
            "replica.slow",
            "replica.recover",
            "replica.failover",
        }
        assert kinds <= set(EVENTS)

    def test_work_counters_stay_consistent_through_recovery(self):
        engine = _replicated(n_shards=2, replication=2)
        for i in range(4):
            engine.query(_window((0.0, 0.0), (9.0, 9.0), seq=i))
        before = engine.stats.objects_tested
        engine.kill_replica(0, 0)
        for i in range(4, 8):
            engine.query(_window((0.0, 0.0), (9.0, 9.0), seq=i))
        engine.recover_replica(0, 0)
        # The recalibration around recovery must keep the engine's
        # cumulative counters monotone (no negative deltas).
        engine.sync_shard_work()
        assert engine.stats.objects_tested >= before
        for i in range(8, 12):
            engine.query(_window((0.0, 0.0), (9.0, 9.0), seq=i))
        assert engine.stats.objects_tested >= before
