"""EventLog: ring semantics, filtering, the JSONL sink, sanitization."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.telemetry import EVENTS, EventLog


class TestEventLog:
    def test_emit_and_recent_oldest_first(self):
        log = EventLog(clock=lambda: 42.0)
        log.emit("a", x=1)
        log.emit("b", x=2)
        records = log.recent()
        assert [r.kind for r in records] == ["a", "b"]
        assert records[0].t == 42.0
        assert records[1].payload == {"x": 2}
        assert log.emitted == 2 and log.dropped == 0 and len(log) == 2

    def test_ring_keeps_most_recent_and_counts_dropped(self):
        log = EventLog(capacity=3)
        for i in range(7):
            log.emit("e", seq=i)
        assert [r.payload["seq"] for r in log.recent()] == [4, 5, 6]
        assert log.emitted == 7
        assert log.dropped == 4

    def test_recent_filters_by_kind_and_limit(self):
        log = EventLog()
        for i in range(5):
            log.emit("slow_query", seq=i)
            log.emit("other", seq=i)
        slow = log.recent("slow_query")
        assert len(slow) == 5
        newest_two = log.recent("slow_query", limit=2)
        assert [r.payload["seq"] for r in newest_two] == [3, 4]
        assert log.recent("missing") == []

    def test_recent_is_a_defensive_copy(self):
        log = EventLog()
        log.emit("e")
        records = log.recent()
        records.clear()
        assert len(log.recent()) == 1

    def test_numpy_payloads_sanitized_to_builtins(self):
        log = EventLog()
        record = log.emit(
            "e",
            scalar=np.float64(1.5),
            array=np.array([1, 2, 3]),
            nested={"k": np.int32(7)},
            window=(np.float32(0.5), 2.0),
        )
        assert record.payload["scalar"] == 1.5
        assert record.payload["array"] == [1, 2, 3]
        assert record.payload["nested"] == {"k": 7}
        assert record.payload["window"] == [0.5, 2.0]
        json.dumps(record.to_dict())  # must serialize without a default=

    def test_jsonl_sink_receives_every_event(self, tmp_path):
        sink = tmp_path / "events.jsonl"
        with EventLog(capacity=2, sink=sink, clock=lambda: 1.0) as log:
            for i in range(5):
                log.emit("e", seq=i)
        lines = sink.read_text().splitlines()
        assert len(lines) == 5  # ring evicted 3, the sink kept all
        docs = [json.loads(line) for line in lines]
        assert [d["payload"]["seq"] for d in docs] == list(range(5))
        assert all(d["kind"] == "e" and d["t"] == 1.0 for d in docs)

    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            EventLog(capacity=0)

    def test_canonical_vocabulary(self):
        # The documented contract: executor + scheduler event kinds.
        assert "slow_query" in EVENTS
        assert "maintenance.compact" in EVENTS
        assert "maintenance.rebalance" in EVENTS
