"""Unit tests for the store's fourth mutation (compact) and the
live-mask/identifier fixes that ride along with it.

Compaction's contract: tombstoned rows are physically dropped, live rows
keep their relative order, the returned remap translates every old
position (``-1`` for dropped rows), the live ``(id, box)`` multiset is
untouched, and the epoch advances exactly when rows were dropped.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import BoxStore
from repro.errors import DatasetError
from repro.geometry import Box
from repro.updates import UpdateBuffer


def _small_store(n: int = 8, ndim: int = 2, seed: int = 0) -> BoxStore:
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, 50, size=(n, ndim))
    return BoxStore(lo, lo + rng.uniform(0, 5, size=(n, ndim)))


class TestCompact:
    def test_compact_drops_dead_rows_in_stable_order(self):
        store = _small_store(6)
        store.delete_ids(np.array([1, 4]))
        remap = store.compact()
        assert store.n == 4 == store.live_count and store.n_dead == 0
        assert store.ids.tolist() == [0, 2, 3, 5]  # relative order kept
        assert store.live.all()
        assert remap.tolist() == [0, -1, 1, 2, -1, 3]

    def test_compact_advances_epoch_only_when_rows_drop(self):
        store = _small_store(5)
        epoch = store.epoch
        remap = store.compact()  # nothing dead: identity no-op
        assert store.epoch == epoch
        assert remap.tolist() == list(range(5))
        store.delete_ids(np.array([0]))
        epoch = store.epoch
        store.compact()
        assert store.epoch == epoch + 1

    def test_compact_preserves_live_fingerprint(self):
        store = _small_store(10)
        store.delete_ids(np.array([2, 3, 7]))
        fp = store.live_fingerprint()
        store.compact()
        assert store.live_fingerprint() == fp

    def test_compact_after_permutation(self):
        store = _small_store(8)
        store.delete_ids(np.array([0, 5]))
        store.apply_order(np.random.default_rng(3).permutation(8))
        fp = store.live_fingerprint()
        remap = store.compact()
        assert store.live_fingerprint() == fp
        assert (remap == -1).sum() == 2
        # Survivors keep the post-permutation relative order.
        kept = remap[remap >= 0]
        assert np.array_equal(kept, np.arange(kept.size))

    def test_compact_everything_leaves_an_empty_store(self):
        store = _small_store(4)
        store.delete_ids(np.arange(4))
        remap = store.compact()
        assert store.n == 0 and store.live_count == 0
        assert np.array_equal(remap, np.full(4, -1))

    def test_compact_keeps_id_allocator_and_max_extent(self):
        store = _small_store(4)
        wide = store.max_extent.copy()
        store.delete_ids(np.array([0, 1, 2, 3]))
        store.compact()
        # The allocator never reuses ids of compacted-away rows ...
        assert store.reserve_ids(1).tolist() == [4]
        # ... and the extension margin stays conservative (monotone).
        assert np.array_equal(store.max_extent, wide)

    def test_appends_and_deletes_keep_working_after_compact(self):
        store = _small_store(6)
        store.delete_ids(np.array([1, 2]))
        store.compact()
        ids = store.append(np.array([[1.0, 1.0]]), np.array([[2.0, 2.0]]))
        assert store.n == 5 and ids.tolist() == [6]
        assert store.delete_ids(ids) == 1
        assert store.live_count == 4


class TestLiveBounds:
    """bounds() computes the MBB over live rows only (satellite bugfix)."""

    def _outlier_store(self) -> BoxStore:
        lo = np.array([[0.0, 0.0], [1.0, 1.0], [500.0, 500.0]])
        return BoxStore(lo, lo + 1.0)

    def test_bounds_shrink_when_outlier_dies(self):
        store = self._outlier_store()
        assert store.bounds() == Box((0.0, 0.0), (501.0, 501.0))
        store.delete_ids(np.array([2]))
        assert store.bounds() == Box((0.0, 0.0), (2.0, 2.0))

    def test_bounds_recover_after_compaction(self):
        store = self._outlier_store()
        store.delete_ids(np.array([2]))
        store.compact()
        assert store.bounds() == Box((0.0, 0.0), (2.0, 2.0))

    def test_bounds_of_all_deleted_store_raise_cleanly(self):
        store = self._outlier_store()
        store.delete_ids(np.arange(3))
        with pytest.raises(DatasetError, match="no live rows"):
            store.bounds()

    def test_bounds_of_empty_store_raise_cleanly(self):
        store = BoxStore(np.empty((0, 2)), np.empty((0, 2)))
        with pytest.raises(DatasetError, match="no live rows"):
            store.bounds()


class TestFingerprintDtype:
    """Ids digest in native int64 — no float64 collision above 2**53."""

    def _pair(self, ids: list[int]) -> BoxStore:
        n = len(ids)
        return BoxStore(
            np.zeros((n, 2)), np.ones((n, 2)), ids=np.array(ids, dtype=np.int64)
        )

    def test_huge_adjacent_ids_do_not_collide(self):
        # float64 cannot represent 2**53 + 1: both casts land on 2**53.
        a = self._pair([2**53, 2**53 + 1])
        b = self._pair([2**53, 2**53])
        assert a.live_fingerprint() != b.live_fingerprint()
        assert a.fingerprint() != b.fingerprint()

    def test_fingerprints_still_order_insensitive(self):
        a = self._pair([2**53, 2**53 + 1])
        b = self._pair([2**53 + 1, 2**53])
        assert a.live_fingerprint() == b.live_fingerprint()
        assert a.fingerprint() == b.fingerprint()

    def test_permutation_safety_is_preserved(self):
        store = _small_store(12, seed=5)
        fp = store.fingerprint()
        live_fp = store.live_fingerprint()
        store.apply_order(np.random.default_rng(9).permutation(12))
        assert store.fingerprint() == fp
        assert store.live_fingerprint() == live_fp


class TestStagedIdGate:
    """Pending buffered ids participate in the explicit-id collision gate."""

    def test_buffered_id_rejected_until_discarded(self):
        store = _small_store(4)
        buffer = UpdateBuffer(store)
        buffer.add(np.array([[1.0, 1.0]]), np.array([[2.0, 2.0]]), np.array([50]))
        with pytest.raises(DatasetError, match="buffered"):
            store.append(
                np.array([[3.0, 3.0]]), np.array([[4.0, 4.0]]), ids=np.array([50])
            )
        buffer.discard(np.array([50]))
        ids = store.append(
            np.array([[3.0, 3.0]]), np.array([[4.0, 4.0]]), ids=np.array([50])
        )
        assert ids.tolist() == [50]

    def test_reserved_buffer_ids_are_staged_too(self):
        store = _small_store(4)
        buffer = UpdateBuffer(store)
        pending = buffer.add(np.array([[1.0, 1.0]]), np.array([[2.0, 2.0]]))
        assert store.staged_count == 1
        with pytest.raises(DatasetError, match="buffered"):
            store.validate_batch(
                np.array([[3.0, 3.0]]), np.array([[4.0, 4.0]]), ids=pending
            )

    def test_drain_unstages_and_merge_succeeds(self):
        store = _small_store(4)
        buffer = UpdateBuffer(store)
        buffer.add(np.array([[1.0, 1.0]]), np.array([[2.0, 2.0]]), np.array([50]))
        lo, hi, ids = buffer.drain()
        assert store.staged_count == 0
        store.append_validated(lo, hi, ids)
        assert store.id_at(store.n - 1) == 50

    def test_copy_carries_the_staged_registry(self):
        store = _small_store(4)
        UpdateBuffer(store).add(
            np.array([[1.0, 1.0]]), np.array([[2.0, 2.0]]), np.array([50])
        )
        dup = store.copy()
        with pytest.raises(DatasetError, match="buffered"):
            dup.validate_batch(
                np.array([[3.0, 3.0]]), np.array([[4.0, 4.0]]),
                ids=np.array([50]),
            )
