"""Unit tests for BoxStore's update surface (append / tombstone delete).

The store's relaxed invariant is *multiset of live rows*: queries only
permute, appends extend the tail, deletes tombstone in place.  These
tests pin down the primitive semantics the indexes build on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import BoxStore
from repro.errors import DatasetError, GeometryError


def _small_store(n: int = 6, ndim: int = 2, seed: int = 0) -> BoxStore:
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, 50, size=(n, ndim))
    return BoxStore(lo, lo + rng.uniform(0, 5, size=(n, ndim)))


class TestAppend:
    def test_append_extends_tail_and_returns_fresh_ids(self):
        store = _small_store(4)
        before_epoch = store.epoch
        ids = store.append(np.array([[1.0, 1.0]]), np.array([[2.0, 2.0]]))
        assert store.n == 5
        assert ids.tolist() == [4]
        assert store.id_at(4) == 4
        assert store.epoch == before_epoch + 1

    def test_batch_appends_and_single_box_promotion(self):
        # validate_batch promotes a single length-d pair to a (1, d) batch.
        store = _small_store(3)
        ids = store.append(np.array([[0.5, 0.5], [3.0, 3.0]]),
                           np.array([[1.5, 1.0], [4.0, 3.5]]))
        assert ids.tolist() == [3, 4]
        assert store.live_count == 5
        ids = store.append(np.array([7.0, 7.0]), np.array([8.0, 8.0]))
        assert ids.tolist() == [5] and store.n == 6

    def test_explicit_ids_respected_and_collisions_rejected(self):
        store = _small_store(3)
        ids = store.append(
            np.array([[1.0, 1.0]]), np.array([[2.0, 2.0]]),
            ids=np.array([40]),
        )
        assert ids.tolist() == [40]
        # The id allocator skips past explicit ids.
        assert store.reserve_ids(1).tolist() == [41]
        with pytest.raises(DatasetError, match="collide"):
            store.append(
                np.array([[1.0, 1.0]]), np.array([[2.0, 2.0]]),
                ids=np.array([2]),
            )

    def test_append_validates_geometry_and_shape(self):
        store = _small_store(3)
        with pytest.raises(GeometryError):
            store.append(np.array([[5.0, 5.0]]), np.array([[4.0, 6.0]]))
        with pytest.raises(DatasetError):
            store.append(np.array([[1.0, 1.0, 1.0]]), np.array([[2.0, 2.0, 2.0]]))

    def test_empty_append_is_a_noop(self):
        store = _small_store(3)
        epoch = store.epoch
        ids = store.append(np.empty((0, 2)), np.empty((0, 2)))
        assert ids.size == 0 and store.n == 3 and store.epoch == epoch
        # Explicit (empty) ids take the same early exit.
        ids = store.append(
            np.empty((0, 2)), np.empty((0, 2)), ids=np.empty(0, dtype=np.int64)
        )
        assert ids.size == 0 and store.epoch == epoch

    def test_max_extent_grows_with_appended_objects(self):
        store = _small_store(4)
        small = store.max_extent.copy()
        store.append(np.array([[0.0, 0.0]]), np.array([[40.0, 0.5]]))
        assert store.max_extent[0] == pytest.approx(40.0)
        assert store.max_extent[1] == pytest.approx(small[1])


class TestDelete:
    def test_delete_tombstones_without_moving_rows(self):
        store = _small_store(5)
        ids_before = store.ids.copy()
        assert store.delete_ids(np.array([1, 3])) == 2
        assert np.array_equal(store.ids, ids_before)  # rows did not move
        assert store.n == 5 and store.live_count == 3 and store.n_dead == 2
        assert not store.live[1] and not store.live[3]

    def test_scans_skip_dead_rows(self):
        store = _small_store(5)
        window_lo, window_hi = np.full(2, -100.0), np.full(2, 100.0)
        assert store.scan_range(0, 5, window_lo, window_hi).size == 5
        store.delete_ids(np.array([0]))
        hits = store.scan_range(0, 5, window_lo, window_hi)
        assert hits.size == 4 and 0 not in hits
        assert store.count_range(0, 5, window_lo, window_hi) == 4

    def test_deleting_unknown_or_dead_id_raises(self):
        store = _small_store(4)
        with pytest.raises(DatasetError, match="not live"):
            store.delete_ids(np.array([99]))
        store.delete_ids(np.array([2]))
        with pytest.raises(DatasetError, match="not live"):
            store.delete_ids(np.array([2]))

    def test_empty_delete_is_a_noop(self):
        store = _small_store(3)
        epoch = store.epoch
        assert store.delete_ids(np.empty(0, dtype=np.int64)) == 0
        assert store.epoch == epoch

    def test_live_mask_rides_permutations(self):
        store = _small_store(6)
        store.delete_ids(np.array([0, 5]))
        rng = np.random.default_rng(3)
        store.apply_order(rng.permutation(6))
        dead_positions = np.flatnonzero(~store.live)
        assert sorted(store.ids[dead_positions].tolist()) == [0, 5]
        window_lo, window_hi = np.full(2, -100.0), np.full(2, 100.0)
        assert sorted(store.scan_range(0, 6, window_lo, window_hi)) == [1, 2, 3, 4]


class TestInvariantSurface:
    def test_live_fingerprint_invariant_under_permutation(self):
        store = _small_store(6)
        store.delete_ids(np.array([2]))
        fp = store.live_fingerprint()
        store.apply_order(np.random.default_rng(1).permutation(6))
        assert store.live_fingerprint() == fp

    def test_live_fingerprint_changes_with_updates(self):
        store = _small_store(6)
        fp = store.live_fingerprint()
        store.append(np.array([[1.0, 1.0]]), np.array([[2.0, 2.0]]))
        fp_after_insert = store.live_fingerprint()
        assert fp_after_insert != fp
        store.delete_ids(np.array([6]))
        assert store.live_fingerprint() == fp  # back to the initial multiset

    def test_physical_fingerprint_sees_tombstones(self):
        # fingerprint() covers physical rows: a delete changes it even
        # though the rows did not move.
        store = _small_store(4)
        fp = store.fingerprint()
        store.delete_ids(np.array([1]))
        assert store.fingerprint() != fp

    def test_copy_preserves_update_state(self):
        store = _small_store(5)
        store.append(np.array([[1.0, 1.0]]), np.array([[2.0, 2.0]]))
        store.delete_ids(np.array([3]))
        dup = store.copy()
        assert dup.epoch == store.epoch
        assert dup.n_dead == 1 and dup.live_count == store.live_count
        assert dup.live_fingerprint() == store.live_fingerprint()
        # Fresh ids continue from the same point in both.
        assert dup.reserve_ids(1).tolist() == store.reserve_ids(1).tolist()

    def test_live_rows_positions(self):
        store = _small_store(4)
        store.delete_ids(np.array([1]))
        assert store.live_rows().tolist() == [0, 2, 3]


class TestDeletePrimitives:
    """find_live_rows / tombstone_rows: the two halves of delete_ids."""

    def test_find_live_rows_resolves_positions(self):
        store = _small_store(5)
        assert store.find_live_rows(np.array([1, 3])).tolist() == [1, 3]

    def test_find_live_rows_rejects_unknown_and_dead(self):
        store = _small_store(5)
        with pytest.raises(DatasetError, match="not live"):
            store.find_live_rows(np.array([99]))
        store.delete_ids(np.array([2]))
        with pytest.raises(DatasetError, match="not live"):
            store.find_live_rows(np.array([2]))

    def test_find_live_rows_does_not_mutate(self):
        store = _small_store(5)
        epoch = store.epoch
        store.find_live_rows(np.array([0]))
        assert store.epoch == epoch and store.n_dead == 0

    def test_tombstone_rows_matches_delete_ids(self):
        a = _small_store(6)
        b = a.copy()
        assert a.delete_ids(np.array([1, 4])) == 2
        assert b.tombstone_rows(b.find_live_rows(np.array([1, 4]))) == 2
        assert a.live_fingerprint() == b.live_fingerprint()
        assert a.epoch == b.epoch

    def test_empty_batches_are_noops(self):
        store = _small_store(3)
        epoch = store.epoch
        assert store.find_live_rows(np.empty(0, dtype=np.int64)).size == 0
        assert store.tombstone_rows(np.empty(0, dtype=np.int64)) == 0
        assert store.epoch == epoch
