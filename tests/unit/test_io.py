"""Unit tests for dataset persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_dataset, make_uniform, save_dataset
from repro.errors import DatasetError


class TestRoundTrip:
    def test_round_trip_preserves_everything(self, tmp_path):
        ds = make_uniform(200, seed=11)
        path = save_dataset(ds, tmp_path / "data")
        assert path.suffix == ".npz"
        loaded = load_dataset(path)
        assert np.array_equal(loaded.store.lo, ds.store.lo)
        assert np.array_equal(loaded.store.hi, ds.store.hi)
        assert np.array_equal(loaded.store.ids, ds.store.ids)
        assert loaded.universe == ds.universe
        assert loaded.name == ds.name
        assert loaded.seed == ds.seed

    def test_round_trip_after_permutation(self, tmp_path):
        ds = make_uniform(100, seed=12)
        ds.store.apply_order(np.random.default_rng(0).permutation(100))
        path = save_dataset(ds, tmp_path / "permuted.npz")
        loaded = load_dataset(path)
        assert np.array_equal(loaded.store.ids, ds.store.ids)

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError, match="not found"):
            load_dataset(tmp_path / "nope.npz")

    def test_foreign_archive_rejected(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, something=np.arange(3))
        with pytest.raises(DatasetError, match="not a repro dataset"):
            load_dataset(path)
