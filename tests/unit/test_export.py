"""Exporters: Prometheus text exposition and the JSON snapshot round-trip.

The golden-text tests pin the wire format (a scraper is an external
consumer; silent format drift breaks it), the property-style tests pin
the invariants the format requires — cumulative bucket monotonicity,
``+Inf`` equal to ``_count``, and no NaN on the wire even for empty
histograms.
"""

from __future__ import annotations

import re

from repro.telemetry import (
    LatencyHistogram,
    MetricsRegistry,
    TimeSeriesRecorder,
    histogram_from_snapshot,
    json_snapshot,
    registry_prometheus,
    render_prometheus,
    snapshot_prometheus,
)
from repro.telemetry.export import _metric_name


def _simple_hist() -> LatencyHistogram:
    """Three exact decade buckets: [1, 10), [10, 100), [100, 1000)."""
    return LatencyHistogram(lo=1.0, hi=1000.0, buckets_per_decade=1)


class TestPrometheusText:
    def test_golden_full_exposition(self):
        hist = _simple_hist()
        for v in (5.0, 0.5, 500.0, 5000.0):  # 0.5 underflows, 5000 overflows
            hist.record(v)
        text = render_prometheus(
            {"ops": 3}, {"shards.balance": 1.5}, {"q.seconds": hist}
        )
        assert text == (
            "# TYPE repro_ops_total counter\n"
            "repro_ops_total 3\n"
            "# TYPE repro_shards_balance gauge\n"
            "repro_shards_balance 1.5\n"
            "# TYPE repro_q_seconds histogram\n"
            'repro_q_seconds_bucket{le="10"} 2\n'
            'repro_q_seconds_bucket{le="+Inf"} 4\n'
            "repro_q_seconds_sum 5505.5\n"
            "repro_q_seconds_count 4\n"
        )

    def test_overflow_sits_under_inf_not_a_nominal_edge(self):
        # A sample clamped into the last bucket must not surface under
        # that bucket's nominal upper edge (1000 would be a lie for a
        # 5000 s sample) — only under +Inf.
        hist = _simple_hist()
        hist.record(5000.0)
        text = render_prometheus({}, {}, {"h": hist})
        assert 'le="1000"' not in text
        assert 'repro_h_bucket{le="+Inf"} 1' in text

    def test_underflow_sits_under_lowest_edge(self):
        hist = _simple_hist()
        hist.record(0.001)  # below lo=1.0: clamps into bucket 0
        text = render_prometheus({}, {}, {"h": hist})
        assert 'repro_h_bucket{le="10"} 1' in text

    def test_empty_histogram_exports_count_zero_no_nan(self):
        text = render_prometheus({}, {}, {"empty.seconds": _simple_hist()})
        assert text == (
            "# TYPE repro_empty_seconds histogram\n"
            'repro_empty_seconds_bucket{le="+Inf"} 0\n'
            "repro_empty_seconds_sum 0\n"
            "repro_empty_seconds_count 0\n"
        )
        assert "NaN" not in text and "nan" not in text

    def test_cumulative_buckets_monotone_and_inf_equals_count(self):
        hist = LatencyHistogram()  # production layout, 40 buckets/decade
        for i in range(500):
            hist.record(10 ** ((i % 70) / 10.0 - 6))
        text = render_prometheus({}, {}, {"h": hist})
        counts = [
            int(m.group(1))
            for m in re.finditer(r'le="[^"]+"} (\d+)', text)
        ]
        assert counts == sorted(counts)
        assert counts[-1] == hist.count  # the +Inf line
        assert f"repro_h_count {hist.count}" in text

    def test_name_sanitization(self):
        assert _metric_name("query.seconds", "repro") == "repro_query_seconds"
        assert _metric_name("a-b c", "repro") == "repro_a_b_c"
        assert _metric_name("9lives", "") == "_9lives"

    def test_help_escaping(self):
        text = render_prometheus(
            {"ops": 1}, {}, {},
            help_text={"ops": "line one\nback\\slash"},
        )
        assert "# HELP repro_ops_total line one\\nback\\\\slash" in text

    def test_registry_and_window_renderers_share_format(self):
        reg = MetricsRegistry()
        reg.counter("ops").inc(5)
        reg.histogram("q.seconds").record(0.01)
        live = registry_prometheus(reg)
        assert "repro_ops_total 5" in live
        assert "repro_q_seconds_count 1" in live
        recorder = TimeSeriesRecorder(reg, window=1.0)
        recorder.tick(0.0)
        recorder.tick(1.0)  # close window 0 (holds the pre-existing state)
        reg.counter("ops").inc(2)
        recorder.flush(2.0)
        window = snapshot_prometheus(recorder.windows[1])
        assert "repro_ops_total 2" in window  # the delta, not the total


class TestJsonSnapshot:
    def test_snapshot_is_sorted_and_complete(self):
        reg = MetricsRegistry()
        reg.counter("z.ops").inc(2)
        reg.counter("a.ops").inc(1)
        reg.gauge("balance").set(1.25)
        reg.histogram("q.seconds").record(0.02)
        doc = json_snapshot(reg)
        assert list(doc["counters"]) == ["a.ops", "z.ops"]
        assert doc["gauges"]["balance"] == 1.25
        hist_doc = doc["histograms"]["q.seconds"]
        assert hist_doc["count"] == 1
        assert hist_doc["layout"]["buckets_per_decade"] == 40

    def test_histogram_round_trip_preserves_percentiles(self):
        reg = MetricsRegistry()
        hist = reg.histogram("q.seconds")
        for i in range(1, 300):
            hist.record(i / 1000.0)
        doc = json_snapshot(reg)["histograms"]["q.seconds"]
        rebuilt = histogram_from_snapshot(doc)
        assert rebuilt.count == hist.count
        assert rebuilt.sum == hist.sum
        assert rebuilt.max == hist.max
        for q in (50, 90, 99):
            assert rebuilt.percentile(q) == hist.percentile(q)

    def test_empty_histogram_round_trip(self):
        reg = MetricsRegistry()
        reg.histogram("empty")
        doc = json_snapshot(reg)["histograms"]["empty"]
        rebuilt = histogram_from_snapshot(doc)
        assert rebuilt.count == 0
        assert rebuilt.percentile(99) == 0.0
        assert rebuilt.mean == 0.0
