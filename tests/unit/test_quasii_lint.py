"""quasii-lint self-tests: each rule fires on a violating fixture and
stays silent on clean code; pragmas and the baseline behave as
documented; the committed baseline is exact for the live tree.

The fixtures are tiny synthetic worlds written under ``tmp_path`` —
the analyzer takes any scan root, so the tests do not depend on the
engine's own sources except for the final self-run.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO / "tools"))

import analysis  # noqa: E402
from analysis.baseline import Baseline  # noqa: E402
from analysis.core import AnalysisConfig  # noqa: E402


def write_tree(root: Path, files: dict[str, str]) -> Path:
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
    return root


def run_rules(
    root: Path, ids: list[str], config: AnalysisConfig | None = None
) -> list[analysis.Finding]:
    rules = [analysis.RULES[rule_id]() for rule_id in ids]
    return analysis.analyze(root, config or AnalysisConfig(), rules)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
def test_registry_holds_the_documented_rule_set():
    assert sorted(analysis.RULES) == [
        "QL001", "QL002", "QL003", "QL004", "QL005", "QL006", "QL007",
        "QL008",
    ]
    for rule in analysis.all_rules():
        assert rule.id in analysis.RULES
        assert rule.title


# ---------------------------------------------------------------------------
# QL001 mutation discipline
# ---------------------------------------------------------------------------
def test_ql001_flags_private_store_access_outside_the_store(tmp_path):
    write_tree(tmp_path, {"mod.py": (
        "def poke(store):\n"
        "    store._lo[0] = 0.0\n"
        "    store._epoch += 1\n"
    )})
    findings = run_rules(tmp_path, ["QL001"])
    assert [f.tag for f in findings] == ["store._lo", "store._epoch"]
    assert all(f.rule == "QL001" for f in findings)


def test_ql001_allows_the_store_itself_and_own_attributes(tmp_path):
    write_tree(tmp_path, {"mod.py": (
        "class BoxStore:\n"
        "    def compact(self):\n"
        "        self._lo = self._lo[self._live]\n"
        "\n"
        "class QuasiiIndex:\n"
        "    def __init__(self):\n"
        "        self._max_extent = None\n"
        "    def grow(self):\n"
        "        return self._max_extent\n"
        "\n"
        "class Query:\n"
        "    def __post_init__(self):\n"
        "        object.__setattr__(self, '_lo', ())\n"
        "    def lo(self):\n"
        "        return self._lo\n"
    )})
    assert run_rules(tmp_path, ["QL001"]) == []


# ---------------------------------------------------------------------------
# QL002 compaction discipline
# ---------------------------------------------------------------------------
def test_ql002_flags_stateful_index_without_a_compaction_hook(tmp_path):
    write_tree(tmp_path, {"mod.py": (
        "class SpatialIndex:\n"
        "    def _on_compaction(self, remap):\n"
        "        raise NotImplementedError\n"
        "\n"
        "class RowIndex(SpatialIndex):\n"
        "    def build(self):\n"
        "        self._rows = []\n"
    )})
    findings = run_rules(tmp_path, ["QL002"])
    assert [f.tag for f in findings] == ["RowIndex"]


def test_ql002_accepts_hooks_stateless_subclasses_and_ancestors(tmp_path):
    write_tree(tmp_path, {"mod.py": (
        "class SpatialIndex:\n"
        "    def _on_compaction(self, remap):\n"
        "        raise NotImplementedError\n"
        "\n"
        "class GoodIndex(SpatialIndex):\n"
        "    def build(self):\n"
        "        self._rows = []\n"
        "    def on_compaction(self, remap):\n"
        "        self._rows = remap[self._rows]\n"
        "\n"
        "class StatelessIndex(SpatialIndex):\n"
        "    def build(self):\n"
        "        self.stats = None\n"
        "\n"
        "class Mid(SpatialIndex):\n"
        "    def on_compaction(self, remap):\n"
        "        pass\n"
        "\n"
        "class Leaf(Mid):\n"
        "    def build(self):\n"
        "        self._csr = []\n"
    )})
    assert run_rules(tmp_path, ["QL002"]) == []


# ---------------------------------------------------------------------------
# QL003 parallel-path purity
# ---------------------------------------------------------------------------
_QL003_WORLD = (
    "class {cls}:\n"
    "    def bump(self):\n"
    "{body}"
    "\n"
    "class QueryExecutor:\n"
    "    def _run_parallel(self, counters):\n"
    "        def work(c):\n"
    "            c.bump()\n"
    "        for c in counters:\n"
    "            work(c)\n"
)


def test_ql003_flags_unguarded_mutation_reachable_from_work(tmp_path):
    write_tree(tmp_path, {"mod.py": _QL003_WORLD.format(
        cls="TallyBoard", body="        self.total = self.total + 1\n"
    )})
    findings = run_rules(tmp_path, ["QL003"])
    assert [f.tag for f in findings] == ["TallyBoard.bump.total"]


def test_ql003_accepts_lock_guarded_and_shard_affine_mutation(tmp_path):
    write_tree(tmp_path, {
        "locked.py": _QL003_WORLD.format(
            cls="TallyBoard",
            body=(
                "        with self._lock:\n"
                "            self.total = self.total + 1\n"
            ),
        ),
        "affine.py": _QL003_WORLD.format(
            cls="Shard", body="        self.total = self.total + 1\n"
        ),
    })
    assert run_rules(tmp_path, ["QL003"]) == []


def test_ql003_is_silent_without_a_parallel_seed(tmp_path):
    write_tree(tmp_path, {"mod.py": (
        "class TallyBoard:\n"
        "    def bump(self):\n"
        "        self.total = 1\n"
    )})
    assert run_rules(tmp_path, ["QL003"]) == []


# ---------------------------------------------------------------------------
# QL004 dtype discipline
# ---------------------------------------------------------------------------
def test_ql004_flags_dtype_less_allocations_only(tmp_path):
    write_tree(tmp_path, {"mod.py": (
        "import numpy as np\n"
        "a = np.zeros(4)\n"
        "b = np.zeros(4, dtype=np.float64)\n"
        "c = np.array([1, 2], np.int64)\n"
        "d = np.full(3, 0.0, np.float64)\n"
        "e = np.full(3, 0.0)\n"
        "f = np.empty((2, 2), dtype=np.int64)\n"
    )})
    findings = run_rules(tmp_path, ["QL004"])
    assert [(f.line, f.tag.split("@")[0]) for f in findings] == [
        (2, "np.zeros"), (6, "np.full"),
    ]


# ---------------------------------------------------------------------------
# QL005 telemetry vocabulary
# ---------------------------------------------------------------------------
def test_ql005_flags_non_canonical_literals(tmp_path):
    write_tree(tmp_path, {"mod.py": (
        "def instrument(registry, name):\n"
        "    registry.histogram('query.seconds')\n"
        "    registry.histogram('query.sceonds')\n"
        "    registry.histogram(name)\n"
    )})
    config = AnalysisConfig().with_vocab({"query.seconds"})
    findings = run_rules(tmp_path, ["QL005"], config)
    assert [f.tag for f in findings] == ["histogram:query.sceonds"]


def test_ql005_is_disabled_without_a_vocabulary(tmp_path):
    write_tree(tmp_path, {"mod.py": (
        "def instrument(registry):\n"
        "    registry.histogram('anything.goes')\n"
    )})
    assert run_rules(tmp_path, ["QL005"]) == []


# ---------------------------------------------------------------------------
# QL006 exception discipline
# ---------------------------------------------------------------------------
def test_ql006_flags_broad_and_bare_excepts(tmp_path):
    write_tree(tmp_path, {"mod.py": (
        "def risky():\n"
        "    try:\n"
        "        pass\n"
        "    except Exception:\n"
        "        pass\n"
        "    try:\n"
        "        pass\n"
        "    except:\n"
        "        pass\n"
        "    try:\n"
        "        pass\n"
        "    except (ValueError, BaseException):\n"
        "        pass\n"
        "    try:\n"
        "        pass\n"
        "    except ValueError:\n"
        "        pass\n"
    )})
    findings = run_rules(tmp_path, ["QL006"])
    assert [f.tag for f in findings] == [
        "risky:except-Exception",
        "risky:except-<bare>",
        "risky:except-BaseException",
    ]


# ---------------------------------------------------------------------------
# QL007 export discipline
# ---------------------------------------------------------------------------
def test_ql007_flags_missing_unexported_and_phantom_names(tmp_path):
    write_tree(tmp_path, {
        "missing/__init__.py": "from .x import thing\n",
        "drift/__init__.py": (
            "from .x import used, skipped\n"
            "__all__ = ['used', 'ghost']\n"
        ),
        "clean/__init__.py": (
            "from .x import thing\n"
            "__version__ = '1.0'\n"
            "__all__ = ['thing']\n"
        ),
        "empty/__init__.py": "",
    })
    tags = sorted(f.tag for f in run_rules(tmp_path, ["QL007"]))
    assert tags == ["missing-__all__", "phantom:ghost", "unexported:skipped"]


# ---------------------------------------------------------------------------
# QL008 process-boundary payload discipline
# ---------------------------------------------------------------------------
def test_ql008_flags_lambdas_and_generators_in_boundary_sends(tmp_path):
    write_tree(tmp_path, {
        "parallel/pipe.py": (
            "def ship(conn, items):\n"
            "    conn.send(lambda v: v + 1)\n"
            "    conn.send(('batch', (x * 2 for x in items)))\n"
            "    conn.send(('ok', [i for i in items]))\n"  # list comp pickles
        ),
        # Same code outside the boundary package: sends there are not
        # process boundaries (thread queues, sockets, mocks).
        "elsewhere.py": (
            "def ship(conn):\n"
            "    conn.send(lambda v: v)\n"
        ),
    })
    findings = run_rules(tmp_path, ["QL008"])
    assert [f.tag for f in findings] == [
        "lambda-in-send", "generator-in-send",
    ]
    assert all(f.path == "parallel/pipe.py" for f in findings)


def test_ql008_flags_resource_and_lambda_attrs_on_payload_classes(tmp_path):
    write_tree(tmp_path, {"telemetry.py": (
        "import threading\n"
        "class LatencyHistogram:\n"
        "    def __init__(self):\n"
        "        self.counts = [0]\n"
        "        self._lock = threading.Lock()\n"
        "        self.scale = lambda v: v\n"
        "class FreeClass:\n"  # not a payload class: resources are fine
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
    )})
    tags = [f.tag for f in run_rules(tmp_path, ["QL008"])]
    assert tags == ["resource-attr:Lock", "lambda-attr"]


def test_ql008_covers_the_frozen_dataclass_setattr_idiom(tmp_path):
    write_tree(tmp_path, {"wire.py": (
        "class SegmentSpec:\n"
        "    def __init__(self, path):\n"
        "        object.__setattr__(self, 'handle', open(path))\n"
    )})
    findings = run_rules(tmp_path, ["QL008"])
    assert [f.tag for f in findings] == ["resource-attr:open"]


def test_ql008_stays_silent_on_the_live_parallel_package():
    findings = run_rules(REPO / "src" / "repro", ["QL008"])
    assert findings == []


# ---------------------------------------------------------------------------
# Pragmas
# ---------------------------------------------------------------------------
def test_inline_pragma_suppresses_named_rule_and_wildcard(tmp_path):
    write_tree(tmp_path, {"mod.py": (
        "import numpy as np\n"
        "a = np.zeros(4)  # ql: allow[QL004]\n"
        "b = np.zeros(4)  # ql: allow[*]\n"
        "c = np.zeros(4)  # ql: allow[QL001]\n"
        "d = np.zeros(4)\n"
    )})
    findings = run_rules(tmp_path, ["QL004"])
    assert [f.line for f in findings] == [4, 5]


# ---------------------------------------------------------------------------
# Baseline semantics
# ---------------------------------------------------------------------------
def _finding(tag: str) -> analysis.Finding:
    return analysis.Finding(
        rule="QL004", path="mod.py", line=1, col=0,
        symbol="mod:", message="m", tag=tag,
    )


def test_baseline_partitions_new_baselined_and_stale():
    current = [_finding("a"), _finding("b")]
    baseline = Baseline.from_findings([_finding("b"), _finding("gone")])
    diff = baseline.diff(current)
    assert [f.tag for f in diff.new] == ["a"]
    assert [f.tag for f in diff.baselined] == ["b"]
    assert diff.stale == [_finding("gone").fingerprint]
    assert diff.blocking  # both the new finding and the stale entry block


def test_baseline_is_a_multiset():
    baseline = Baseline.from_findings([_finding("dup")])
    diff = baseline.diff([_finding("dup"), _finding("dup")])
    assert len(diff.new) == 1 and len(diff.baselined) == 1


def test_baseline_roundtrip_and_exact_match(tmp_path):
    findings = [_finding("a"), _finding("b")]
    path = tmp_path / "baseline.json"
    Baseline.from_findings(findings).save(path)
    diff = Baseline.load(path).diff(findings)
    assert not diff.blocking
    assert len(diff.baselined) == 2


# ---------------------------------------------------------------------------
# The CLI and the committed baseline
# ---------------------------------------------------------------------------
def _run_cli(*argv: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "tools.analysis", *argv],
        cwd=REPO, capture_output=True, text=True,
    )


def test_cli_self_run_matches_the_committed_baseline_exactly():
    """The live tree is lint-clean modulo the committed baseline —
    no new findings, and no stale entries left in the file."""
    proc = _run_cli("--json")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    report = json.loads(proc.stdout)
    assert report["format"] == "quasii-lint/1"
    assert report["summary"]["new"] == 0
    assert report["summary"]["stale"] == 0
    assert sorted(report["rules"]) == sorted(analysis.RULES)


def test_cli_reports_findings_and_exits_nonzero(tmp_path):
    write_tree(tmp_path, {"mod.py": "import numpy as np\na = np.zeros(4)\n"})
    proc = _run_cli(str(tmp_path), "--no-baseline", "--no-vocab", "--json")
    assert proc.returncode == 1
    report = json.loads(proc.stdout)
    assert report["summary"] == {
        "total": 1, "new": 1, "baselined": 0, "stale": 0,
    }
    (finding,) = report["findings"]
    assert finding["rule"] == "QL004"
    assert finding["status"] == "new"
    assert "fingerprint" in finding


def test_cli_list_rules_and_bad_usage_exit_codes(tmp_path):
    assert _run_cli("--list-rules").returncode == 0
    assert _run_cli(str(tmp_path / "nowhere")).returncode == 2
    assert _run_cli("--rules", "QL999").returncode == 2
