"""Unit tests for report rendering."""

from __future__ import annotations

from repro.bench.reporting import ExperimentReport, render_table


class TestRenderTable:
    def test_alignment_and_content(self):
        text = render_table(
            ["name", "value"], [["alpha", "1.5"], ["b", "100"]]
        )
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "-" in lines[1]
        assert "alpha" in lines[2]
        assert lines[3].endswith("100")

    def test_wide_cells_stretch_columns(self):
        text = render_table(["h"], [["a-very-long-cell-value"]])
        header, sep, row = text.splitlines()
        assert len(sep) >= len("a-very-long-cell-value")

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert len(text.splitlines()) == 2


class TestExperimentReport:
    def test_add_table_stringifies(self):
        report = ExperimentReport("x", "desc")
        report.add_table("t", ["a"], [[1.23456], [12345.6], [0.000123], [0]])
        rows = report.tables[0].rows
        assert rows[0] == ["1.235"]
        assert rows[1] == ["12,346"]
        assert rows[2] == ["0.00012"]
        assert rows[3] == ["0"]

    def test_render_includes_everything(self):
        report = ExperimentReport("expX", "the description")
        report.add_table("tbl", ["h1"], [["v1"]])
        report.add_note("a note")
        text = report.render()
        assert "expX: the description" in text
        assert "-- tbl" in text
        assert "v1" in text
        assert "* a note" in text

    def test_render_without_notes(self):
        report = ExperimentReport("e", "d")
        report.add_table("t", ["h"], [["v"]])
        assert "* " not in report.render()
