"""Unit tests for QUASII's STR bulk loading of large update-buffer flushes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import ScanIndex
from repro.core import QuasiiConfig, QuasiiIndex
from repro.datasets import BoxStore
from repro.errors import ConfigurationError
from repro.geometry import Box
from repro.queries import RangeQuery


def _store(n=20, seed=0, ndim=2):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, 100, size=(n, ndim))
    return BoxStore(lo, lo + rng.uniform(0, 4, size=(n, ndim)))


def _batch(k, seed=1, ndim=2):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, 100, size=(k, ndim))
    return lo, lo + rng.uniform(0, 4, size=(k, ndim))


FULL = RangeQuery(Box((-10.0, -10.0), (120.0, 120.0)), seq=0)
CONFIG = QuasiiConfig(2, (8, 4))


class TestBulkFlush:
    def test_rejects_bad_threshold(self):
        with pytest.raises(ConfigurationError, match="bulk_flush_threshold"):
            QuasiiIndex(_store(), CONFIG, bulk_flush_threshold=0)

    def test_default_threshold_is_top_level(self):
        index = QuasiiIndex(_store(), CONFIG)
        assert index._bulk_flush_threshold == CONFIG.threshold(0)

    def test_large_flush_is_fully_refined_on_arrival(self):
        index = QuasiiIndex(_store(), CONFIG, bulk_flush_threshold=10)
        scan = ScanIndex(index.store.copy())
        lo, hi = _batch(40)
        index.insert(lo, hi)
        scan.insert(lo, hi)
        assert np.array_equal(np.sort(index.query(FULL)), np.sort(scan.query(FULL)))
        index.validate_structure()
        # The merged run arrives refined: a follow-up query into the
        # appended region does no further cracking.
        cracks_before = index.stats.cracks
        probe = RangeQuery(Box((20.0, 20.0), (60.0, 60.0)), seq=1)
        expect = np.sort(scan.query(probe))
        assert np.array_equal(np.sort(index.query(probe)), expect)
        assert index.stats.cracks == cracks_before

    def test_bulk_run_slices_honor_thresholds(self):
        index = QuasiiIndex(_store(), CONFIG, bulk_flush_threshold=10)
        lo, hi = _batch(60)
        index.insert(lo, hi)
        index.query(FULL)
        index.validate_structure()
        # Every slice of the bulk-loaded run is final (exact MBB, at or
        # below its level threshold) — the converged shape, eagerly.
        for top in index._tops:
            for s in top:
                assert s.final
                assert s.size <= CONFIG.threshold(0)
                if s.children is not None:
                    for c in s.children:
                        assert c.size <= CONFIG.threshold(1)

    def test_small_flush_stays_lazy(self):
        index = QuasiiIndex(_store(), CONFIG, bulk_flush_threshold=50)
        lo, hi = _batch(5)
        index.insert(lo, hi)
        moved_before = index.stats.rows_reorganized
        index.query(FULL)
        index.validate_structure()
        # The merge itself moved nothing (coarse run); only the query's
        # own cracking reorganized rows.
        assert index.stats.merges == 1
        assert index.stats.rows_reorganized >= moved_before

    def test_duplicate_keys_bulk_load(self):
        index = QuasiiIndex(_store(), CONFIG, bulk_flush_threshold=10)
        scan = ScanIndex(index.store.copy())
        lo = np.full((30, 2), 42.0)
        hi = lo + 1.0
        index.insert(lo, hi)
        scan.insert(lo, hi)
        assert np.array_equal(np.sort(index.query(FULL)), np.sort(scan.query(FULL)))
        index.validate_structure()

    def test_buffered_batches_bulk_load_as_one_appended_run(self):
        # Two small batches accumulate in the buffer; together they pass
        # the threshold, so the drain bulk loads them as one refined run
        # while the (never-queried) main hierarchy stays untouched.
        index = QuasiiIndex(_store(4, seed=7), CONFIG, bulk_flush_threshold=30)
        scan = ScanIndex(index.store.copy())
        for seed, k in ((2, 10), (3, 25)):
            lo, hi = _batch(k, seed=seed)
            index.insert(lo, hi)
            scan.insert(lo, hi)
        assert np.array_equal(np.sort(index.query(FULL)), np.sort(scan.query(FULL)))
        index.validate_structure()
        assert index.runs == 2  # main hierarchy + one bulk-loaded run
        assert index._tops[0].slices[-1].end == 4  # initial rows left alone

    def test_virgin_main_hierarchy_is_never_bulk_loaded(self):
        # Regression: a large flush into a store that has never been
        # queried must bulk load only the appended rows — eagerly sorting
        # the whole initial array would forfeit query-driven building.
        index = QuasiiIndex(_store(40, seed=11), CONFIG, bulk_flush_threshold=10)
        lo, hi = _batch(12, seed=12)
        index.insert(lo, hi)
        moved_before = index.stats.rows_reorganized
        index.query(RangeQuery(Box((200.0, 200.0), (201.0, 201.0)), seq=0))
        # The merge only reorganized the appended run (2 levels x 12 rows),
        # not the 40 initial rows.
        assert index.runs == 2
        assert index._tops[1].slices[0].begin == 40
        assert index.stats.rows_reorganized - moved_before <= 2 * 12
        index.validate_structure()

    def test_empty_start_store_bulk_loads_whole_ingest(self):
        d = 2
        store = BoxStore(np.empty((0, d)), np.empty((0, d)))
        index = QuasiiIndex(store, CONFIG, bulk_flush_threshold=10)
        scan_store = BoxStore(np.empty((0, d)), np.empty((0, d)))
        scan = ScanIndex(scan_store)
        lo, hi = _batch(30, seed=13)
        index.insert(lo, hi)
        scan.insert(lo, hi)
        assert np.array_equal(np.sort(index.query(FULL)), np.sort(scan.query(FULL)))
        index.validate_structure()
        assert index.runs == 1  # the ingest run is the whole forest

    def test_interleaved_bulk_flushes_match_oracle(self):
        rng = np.random.default_rng(9)
        index = QuasiiIndex(_store(30, seed=8), CONFIG, bulk_flush_threshold=12)
        scan = ScanIndex(index.store.copy())
        for t in range(15):
            k = int(rng.integers(1, 25))
            lo, hi = _batch(k, seed=100 + t)
            index.insert(lo, hi)
            scan.insert(lo, hi)
            if t % 3 == 0 and scan.store.live_count > 5:
                live = scan.store.ids[scan.store.live_rows()]
                victims = rng.choice(live, size=3, replace=False)
                index.delete(victims)
                scan.delete(victims)
            qlo = rng.uniform(-5, 100, size=2)
            window = Box(tuple(qlo), tuple(qlo + rng.uniform(5, 60, size=2)))
            q = RangeQuery(window, seq=t + 1)
            assert np.array_equal(np.sort(index.query(q)), np.sort(scan.query(q)))
            index.validate_structure()
        assert index.stats.merges > 0
