"""Unit tests for the per-index insert/delete paths.

Each update-capable index has a distinct write strategy — QUASII stages
and lazily merges, the grid extends a CSR overflow, the R-Tree inserts
directly via Guttman placement, Scan just appends — but they all must
answer with exactly the live-row set afterwards.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import RTreeIndex, ScanIndex, UniformGridIndex
from repro.core import QuasiiConfig, QuasiiIndex
from repro.datasets import BoxStore
from repro.errors import ConfigurationError, QueryError
from repro.geometry import Box
from repro.queries import RangeQuery


UNIVERSE = Box((0.0, 0.0), (100.0, 100.0))
FULL = RangeQuery(Box((-1.0, -1.0), (101.0, 101.0)), seq=999)


def _store(n: int = 40, seed: int = 0) -> BoxStore:
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, 90, size=(n, 2))
    return BoxStore(lo, lo + rng.uniform(0, 5, size=(n, 2)))


def _batch(k: int, seed: int = 1) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, 90, size=(k, 2))
    return lo, lo + rng.uniform(0, 5, size=(k, 2))


def _expected_live(index) -> np.ndarray:
    store = index.store
    return np.sort(store.ids[store.live_rows()])


class TestMixinSurface:
    def test_single_box_promoted_to_batch(self):
        idx = ScanIndex(_store())
        ids = idx.insert(np.array([1.0, 1.0]), np.array([2.0, 2.0]))
        assert ids.size == 1
        assert idx.stats.inserts == 1

    def test_shape_and_dim_validation(self):
        from repro.errors import DatasetError

        idx = ScanIndex(_store())
        with pytest.raises(DatasetError, match="mismatch"):
            idx.insert(np.zeros((2, 2)), np.ones((3, 2)))
        with pytest.raises(DatasetError, match="dims"):
            idx.insert(np.zeros((1, 3)), np.ones((1, 3)))

    def test_invalid_batches_rejected_at_insert_time_even_when_lazy(self):
        # QUASII stages inserts; a batch the store would reject at merge
        # time must fail fast at insert() and leave nothing staged.
        from repro.errors import DatasetError, GeometryError

        idx = QuasiiIndex(_store(), QuasiiConfig(2, (8, 4)))
        with pytest.raises(GeometryError, match="exceeds upper"):
            idx.insert(np.array([[5.0, 5.0]]), np.array([[1.0, 1.0]]))
        with pytest.raises(DatasetError, match="collide"):
            idx.insert(
                np.array([[1.0, 1.0]]), np.array([[2.0, 2.0]]),
                ids=np.array([0]),  # already in the store
            )
        ok = idx.insert(
            np.array([[1.0, 1.0]]), np.array([[2.0, 2.0]]),
            ids=np.array([500]),
        )
        with pytest.raises(DatasetError, match="buffered"):
            idx.insert(
                np.array([[1.0, 1.0]]), np.array([[2.0, 2.0]]),
                ids=np.array([500]),  # still staged
            )
        assert idx.pending_updates() == 1 and idx.stats.inserts == 1
        got = idx.query(FULL)  # the merge succeeds; nothing was lost
        assert np.isin(ok, got).all()
        idx.validate_structure()

    def test_explicit_buffered_ids_never_poison_the_allocator(self):
        # Staging an explicit id must advance the store's allocator, or a
        # later auto-reserved id could collide with the buffered row and
        # make every subsequent merge fail.
        idx = QuasiiIndex(_store(), QuasiiConfig(2, (8, 4)))
        explicit = idx.insert(
            np.array([[1.0, 1.0]]), np.array([[2.0, 2.0]]),
            ids=np.array([45]),
        )
        fresh = idx.insert(*_batch(8, seed=7))  # auto-reserved ids
        assert not np.isin(explicit, fresh).any()
        got = np.sort(idx.query(FULL))  # merge must succeed
        assert np.isin(np.concatenate([explicit, fresh]), got).all()
        idx.validate_structure()

    def test_counters_accumulate_and_reset(self):
        idx = ScanIndex(_store())
        lo, hi = _batch(3)
        ids = idx.insert(lo, hi)
        idx.delete(ids[:2])
        assert idx.stats.inserts == 3 and idx.stats.deletes == 2
        snap = idx.stats.snapshot()
        assert snap.inserts == 3 and snap.deletes == 2 and snap.merges == 0
        idx.stats.reset()
        assert idx.stats.inserts == 0 and idx.stats.deletes == 0
        assert idx.stats.merges == 0

    def test_query_reflects_inserts_and_deletes(self):
        for make in (
            lambda s: ScanIndex(s),
            lambda s: QuasiiIndex(s, QuasiiConfig(2, (8, 4))),
            lambda s: UniformGridIndex(s, UNIVERSE, 5),
            lambda s: RTreeIndex(s, capacity=8),
        ):
            idx = make(_store())
            idx.build()
            lo, hi = _batch(5)
            new_ids = idx.insert(lo, hi)
            got = np.sort(idx.query(FULL))
            assert np.array_equal(got, _expected_live(idx)), idx.name
            assert np.isin(new_ids, got).all(), idx.name
            idx.delete(new_ids[:2])
            idx.delete(np.array([0]))
            got = np.sort(idx.query(FULL))
            assert np.array_equal(got, _expected_live(idx)), idx.name
            assert not np.isin([new_ids[0], new_ids[1], 0], got).any(), idx.name


class TestStartEmpty:
    """A mutable store's natural bootstrap: begin with zero rows, insert."""

    def _empty_store(self) -> BoxStore:
        return BoxStore(np.empty((0, 2)), np.empty((0, 2)))

    def test_every_index_supports_start_empty_then_insert(self):
        for make in (
            lambda s: ScanIndex(s),
            lambda s: QuasiiIndex(s),
            lambda s: UniformGridIndex(s, UNIVERSE, 5),
            lambda s: RTreeIndex(s, capacity=8),
        ):
            idx = make(self._empty_store())
            idx.build()
            assert idx.query(FULL).size == 0, idx.name
            lo, hi = _batch(20, seed=6)
            ids = idx.insert(lo, hi)
            got = np.sort(idx.query(FULL))
            assert np.array_equal(got, np.sort(ids)), idx.name
            idx.delete(ids[:5])
            got = np.sort(idx.query(FULL))
            assert np.array_equal(got, np.sort(ids[5:])), idx.name

    def test_empty_quasii_forest_stays_valid(self):
        idx = QuasiiIndex(self._empty_store())
        idx.validate_structure()
        idx.insert(*_batch(10, seed=3))
        idx.query(FULL)
        idx.validate_structure()

    def test_nan_corners_rejected(self):
        from repro.errors import GeometryError

        idx = ScanIndex(_store())
        with pytest.raises(GeometryError, match="finite"):
            idx.insert(np.array([[np.nan, 1.0]]), np.array([[np.nan, 2.0]]))

    def test_start_empty_replication_grid(self):
        grid = UniformGridIndex(
            self._empty_store(), UNIVERSE, 5, assignment="replication"
        )
        grid.build()
        assert grid.query(FULL).size == 0
        ids = grid.insert(*_batch(10, seed=9))
        assert np.array_equal(np.sort(grid.query(FULL)), np.sort(ids))

    def test_rebuild_after_deleting_everything(self):
        store = _store(10)
        grid = UniformGridIndex(store, UNIVERSE, 5, assignment="replication")
        grid.build()
        grid.delete(store.ids.copy())
        grid._merge_overflow()  # rebuild over zero live rows must not crash
        assert grid.query(FULL).size == 0


class TestEpochStalenessGuard:
    def test_out_of_band_store_update_fails_loudly(self):
        from repro.errors import QueryError

        store = _store()
        grid = UniformGridIndex(store, UNIVERSE, 5)
        grid.build()
        grid.query(FULL)  # fine
        store.append(np.array([[1.0, 1.0]]), np.array([[2.0, 2.0]]))
        with pytest.raises(QueryError, match="epoch"):
            grid.query(FULL)
        # Writes cannot silently "forgive" the out-of-band update either.
        with pytest.raises(QueryError, match="epoch"):
            grid.insert(np.array([[3.0, 3.0]]), np.array([[4.0, 4.0]]))
        with pytest.raises(QueryError, match="epoch"):
            grid.delete(np.array([0]))

    def test_updates_through_the_index_keep_the_epoch_in_sync(self):
        idx = QuasiiIndex(_store(), QuasiiConfig(2, (8, 4)))
        ids = idx.insert(*_batch(3))
        idx.query(FULL)
        idx.delete(ids)
        assert np.sort(idx.query(FULL)).size == 40


class TestGridOverflow:
    def test_inserts_go_to_overflow_then_compact(self):
        grid = UniformGridIndex(_store(), UNIVERSE, 5, merge_threshold=6)
        grid.build()
        initial_work = grid.build_work
        lo, hi = _batch(4)
        grid.insert(lo, hi)
        assert grid.pending_updates() == 4
        assert grid.stats.merges == 0
        lo, hi = _batch(4, seed=2)
        grid.insert(lo, hi)  # 8 > 6: compaction
        assert grid.pending_updates() == 0
        assert grid.stats.merges == 1
        # The comparison-model cost accumulates across compactions.
        assert grid.build_work > initial_work
        assert np.array_equal(np.sort(grid.query(FULL)), _expected_live(grid))

    def test_insert_before_build_is_swept_up_by_build(self):
        grid = UniformGridIndex(_store(), UNIVERSE, 5)
        lo, hi = _batch(3)
        grid.insert(lo, hi)
        assert grid.pending_updates() == 0  # no overflow pre-build
        grid.build()
        assert np.array_equal(np.sort(grid.query(FULL)), _expected_live(grid))

    def test_replication_assignment_insert_path(self):
        grid = UniformGridIndex(_store(), UNIVERSE, 5, assignment="replication")
        grid.build()
        # A box spanning many cells exercises the replicated overflow.
        grid.insert(np.array([[5.0, 5.0]]), np.array([[80.0, 80.0]]))
        assert grid.pending_updates() > 1  # one entry per overlapped cell
        assert np.array_equal(np.sort(grid.query(FULL)), _expected_live(grid))
        window = RangeQuery(Box((30.0, 30.0), (40.0, 40.0)), seq=1)
        assert 40 in grid.query(window)  # the big box is id 40

    def test_compaction_sheds_dead_entries_under_churn(self):
        grid = UniformGridIndex(_store(), UNIVERSE, 5, merge_threshold=10)
        grid.build()
        for i in range(20):
            ids = grid.insert(*_batch(5, seed=50 + i))
            grid.delete(ids)
        assert grid.stats.merges > 0
        # The CSR holds only live entries after a compaction: inserts that
        # were deleted again do not accumulate forever.
        assert grid._sorted_rows.size <= grid.store.n - grid.store.n_dead + grid.pending_updates()
        assert np.array_equal(np.sort(grid.query(FULL)), _expected_live(grid))

    def test_merge_threshold_validated(self):
        with pytest.raises(ConfigurationError, match="merge_threshold"):
            UniformGridIndex(_store(), UNIVERSE, 5, merge_threshold=0)


class TestRTreeInserts:
    def test_insert_places_rows_in_existing_tree(self):
        rtree = RTreeIndex(_store(), capacity=8)
        rtree.build()
        nodes_before = rtree.root.count_nodes()
        lo, hi = _batch(30, seed=4)
        rtree.insert(lo, hi)
        assert rtree.root.count_nodes() > nodes_before  # splits happened
        assert np.array_equal(np.sort(rtree.query(FULL)), _expected_live(rtree))

    def test_tree_stays_balanced_under_inserts(self):
        rtree = RTreeIndex(_store(), capacity=4)
        rtree.build()
        h = rtree.height()
        lo, hi = _batch(60, seed=5)
        rtree.insert(lo, hi)
        assert rtree.height() >= h
        # Every leaf is at the same depth (Guttman preserves balance).
        depths = set()

        def walk(node, d):
            if node.is_leaf:
                depths.add(d)
            else:
                for c in node.children:
                    walk(c, d + 1)

        walk(rtree.root, 0)
        assert len(depths) == 1

    def test_deletes_leave_mbrs_conservative_but_correct(self):
        rtree = RTreeIndex(_store(), capacity=8)
        rtree.build()
        rtree.delete(np.arange(10))
        got = np.sort(rtree.query(FULL))
        assert np.array_equal(got, np.arange(10, 40))


class TestQuasiiLazyMerge:
    def test_inserts_stage_until_next_query(self):
        idx = QuasiiIndex(_store(), QuasiiConfig(2, (8, 4)))
        lo, hi = _batch(5)
        new_ids = idx.insert(lo, hi)
        assert idx.pending_updates() == 5
        assert idx.stats.merges == 0
        assert idx.store.n == 40  # rows not yet in the store
        got = np.sort(idx.query(FULL))
        assert idx.pending_updates() == 0
        assert idx.store.n == 45
        assert idx.stats.merges == 1
        assert np.isin(new_ids, got).all()
        idx.validate_structure()

    def test_failed_delete_leaves_staged_rows_intact(self):
        # All-or-nothing: a delete batch with an unknown id must not
        # consume the staged targets it was bundled with.
        from repro.errors import DatasetError

        idx = QuasiiIndex(_store(), QuasiiConfig(2, (8, 4)))
        staged = idx.insert(*_batch(2))
        with pytest.raises(DatasetError, match="not live"):
            idx.delete(np.concatenate([staged, np.array([999_999])]))
        assert idx.pending_updates() == 2  # nothing was discarded
        assert idx.stats.deletes == 0
        got = np.sort(idx.query(FULL))
        assert np.isin(staged, got).all()

    def test_buffered_delete_never_reaches_the_store(self):
        idx = QuasiiIndex(_store(), QuasiiConfig(2, (8, 4)))
        ids = idx.insert(*_batch(3))
        assert idx.delete(ids) == 3
        assert idx.pending_updates() == 0
        assert idx.store.n == 40 and idx.store.n_dead == 0
        assert np.array_equal(np.sort(idx.query(FULL)), np.arange(40))

    def test_consecutive_batches_coalesce_into_one_run(self):
        idx = QuasiiIndex(_store(), QuasiiConfig(2, (8, 4)))
        idx.insert(*_batch(3, seed=1))
        idx.query(FULL)
        idx.insert(*_batch(3, seed=2))
        idx.query(FULL)
        # FULL touches (and may crack) the run; runs stay bounded.
        assert idx.runs <= 3
        idx.validate_structure()

    def test_max_runs_collapses_the_forest(self):
        store = _store(60)
        idx = QuasiiIndex(store, QuasiiConfig(2, (8, 4)), max_runs=2)
        rng = np.random.default_rng(8)
        for i in range(10):
            idx.insert(*_batch(4, seed=100 + i))
            qlo = rng.uniform(0, 80, size=2)
            window = Box(tuple(qlo), tuple(qlo + 15.0))
            idx.query(RangeQuery(window, seq=i))
            assert idx.runs <= 3  # main + max_runs
            idx.validate_structure()
        assert np.array_equal(np.sort(idx.query(FULL)), _expected_live(idx))

    def test_max_runs_validated(self):
        with pytest.raises(ConfigurationError, match="max_runs"):
            QuasiiIndex(_store(), QuasiiConfig(2, (8, 4)), max_runs=0)

    def test_memory_bytes_includes_buffer(self):
        idx = QuasiiIndex(_store(), QuasiiConfig(2, (8, 4)))
        before = idx.memory_bytes()
        idx.insert(*_batch(10))
        assert idx.memory_bytes() > before

    def test_format_structure_shows_runs_and_buffer(self):
        idx = QuasiiIndex(_store(), QuasiiConfig(2, (8, 4)))
        idx.query(FULL)  # crack the main hierarchy
        idx.insert(*_batch(3))
        text = idx.format_structure()
        assert "update buffer: 3 pending rows" in text
        idx.query(FULL)
        assert "appended run" in idx.format_structure()
