"""Unit tests for QUASII's optional knobs: artificial split strategy and
the structure pretty-printer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import ScanIndex
from repro.core import QuasiiConfig, QuasiiIndex
from repro.datasets import BoxStore, make_neuro_like, make_uniform
from repro.errors import ConfigurationError
from repro.geometry import Box
from repro.queries import RangeQuery, uniform_workload


class TestArtificialSplit:
    def test_rejects_unknown(self):
        ds = make_uniform(100, seed=1)
        with pytest.raises(ConfigurationError):
            QuasiiIndex(ds.store.copy(), artificial_split="thirds")

    @pytest.mark.parametrize("split", ["midpoint", "median"])
    def test_matches_scan(self, split):
        ds = make_neuro_like(2_500, seed=41)
        index = QuasiiIndex(ds.store.copy(), artificial_split=split)
        scan = ScanIndex(ds.store.copy())
        for q in uniform_workload(ds.universe, 20, 1e-2, seed=42):
            assert np.array_equal(
                np.sort(index.query(q)), np.sort(scan.query(q))
            )
        index.validate_structure()

    def test_median_balances_skewed_slices(self):
        # Heavily skewed keys: midpoint splitting produces lopsided
        # pieces, median splitting produces balanced ones.
        rng = np.random.default_rng(43)
        keys = rng.exponential(1.0, size=512)  # long right tail
        lo = np.zeros((512, 2))
        lo[:, 0] = keys
        store_mid = BoxStore(lo, lo + 0.01)
        store_med = BoxStore(lo.copy(), lo.copy() + 0.01)
        config = QuasiiConfig(2, (64, 32))
        covering = RangeQuery(Box((-1.0, -1.0), (1000.0, 2.0)))

        def top_sizes(index):
            index.query(covering)
            return [s.size for s in index._top]

        mid_sizes = top_sizes(QuasiiIndex(store_mid, config))
        med_sizes = top_sizes(QuasiiIndex(store_med, config, artificial_split="median"))
        # Balance measure: largest / smallest slice size.
        assert max(med_sizes) / min(med_sizes) <= max(mid_sizes) / min(mid_sizes)

    def test_median_with_duplicate_heavy_keys_terminates(self):
        lo = np.zeros((200, 2))
        lo[:150, 0] = 5.0  # 75% duplicates at the median
        lo[150:, 0] = np.linspace(0, 10, 50)
        store = BoxStore(lo, lo + 0.1)
        index = QuasiiIndex(store, QuasiiConfig(2, (16, 8)), artificial_split="median")
        hits = index.query(RangeQuery(Box((-1.0, -1.0), (11.0, 1.0))))
        assert hits.size == 200
        index.validate_structure()


class TestFormatStructure:
    def test_initial_structure(self):
        # n must exceed the top-level threshold for the root slice to be
        # "coarse" (with n=5000 and tau=60 the ladder is 2940/420/60).
        ds = make_uniform(5_000, seed=44)
        index = QuasiiIndex(ds.store.copy())
        text = index.format_structure()
        assert "x-slice rows[0:5000)" in text
        assert "coarse" in text

    def test_after_query_shows_levels(self):
        ds = make_uniform(2_000, seed=45)
        index = QuasiiIndex(ds.store.copy(), tau=30)
        index.query(uniform_workload(ds.universe, 1, 1e-2, seed=46)[0])
        text = index.format_structure()
        assert "x-slice" in text
        assert "y-slice" in text
        assert "final" in text

    def test_elision(self):
        ds = make_uniform(5_000, seed=47)
        index = QuasiiIndex(ds.store.copy(), tau=10)
        for q in uniform_workload(ds.universe, 20, 1e-2, seed=48):
            index.query(q)
        text = index.format_structure(max_slices_per_level=2)
        assert "... " in text
