"""Regression gate: headline extraction, drift comparison, exit codes."""

from __future__ import annotations

import json

from repro.bench.regression import (
    compare_headlines,
    extract_headline,
    higher_is_better,
    noise_floor,
    render_drift,
    run_diff,
)


def _doc(verb: str, headline: dict | None = None, **extra) -> dict:
    """A minimal schema-valid repro-bench/1 document."""
    metrics = dict(extra.pop("metrics", {}))
    if headline is not None:
        metrics["headline"] = headline
    return {
        "schema": "repro-bench/1",
        "verb": verb,
        "scale": "smoke",
        "created_unix": 1.0,
        "elapsed_seconds": 1.0,
        "description": "test doc",
        "tables": extra.pop("tables", []),
        "notes": [],
        "metrics": metrics,
        **extra,
    }


class TestDirections:
    def test_latency_and_balance_regress_upward(self):
        assert not higher_is_better("query_p99_ms")
        assert not higher_is_better("rebalanced_peak_balance")

    def test_speedup_and_throughput_regress_downward(self):
        assert higher_is_better("batch_speedup_scan")
        assert higher_is_better("ops_per_second")

    def test_noise_floors_by_family(self):
        assert noise_floor("query_p99_ms") == 0.5
        assert noise_floor("rebalanced_peak_balance") == 0.05
        assert noise_floor("batch_speedup_grid") == 0.1
        assert noise_floor("unknown_metric") == 0.0


class TestCompareHeadlines:
    def test_self_diff_is_clean(self):
        docs = [
            _doc("soak", {"query_p99_ms": 3.0, "ops_per_second": 500.0}),
            _doc("query-api", {"batch_speedup_scan": 8.0}),
        ]
        drifts = compare_headlines(docs, [dict(d) for d in docs])
        assert len(drifts) == 3
        assert all(not d.breach for d in drifts)
        assert all(d.regression == 0.0 for d in drifts)

    def test_inflated_p99_breaches(self):
        base = [_doc("soak", {"query_p99_ms": 2.0})]
        cand = [_doc("soak", {"query_p99_ms": 4.0})]
        (drift,) = compare_headlines(base, cand, tolerance=0.25)
        assert drift.breach
        assert drift.regression == 1.0
        assert drift.delta == 2.0

    def test_speedup_drop_breaches(self):
        base = [_doc("query-api", {"batch_speedup_scan": 8.0})]
        cand = [_doc("query-api", {"batch_speedup_scan": 4.0})]
        (drift,) = compare_headlines(base, cand, tolerance=0.25)
        assert drift.breach and drift.regression == 0.5

    def test_improvements_never_breach(self):
        base = [
            _doc(
                "soak",
                {"query_p99_ms": 4.0, "ops_per_second": 100.0},
            )
        ]
        cand = [
            _doc(
                "soak",
                {"query_p99_ms": 1.0, "ops_per_second": 900.0},
            )
        ]
        drifts = compare_headlines(base, cand)
        assert all(not d.breach for d in drifts)
        assert all(d.regression < 0 for d in drifts)

    def test_noise_floor_suppresses_tiny_absolute_drift(self):
        # +50% relative but only +0.1 ms absolute: jitter, not regression.
        base = [_doc("soak", {"query_p99_ms": 0.2})]
        cand = [_doc("soak", {"query_p99_ms": 0.3})]
        (drift,) = compare_headlines(base, cand, tolerance=0.25)
        assert not drift.breach
        # noise_scale=0 disables absolute gating; now it breaches.
        (drift,) = compare_headlines(
            base, cand, tolerance=0.25, noise_scale=0.0
        )
        assert drift.breach

    def test_one_sided_metrics_and_verbs_are_skipped(self):
        base = [_doc("soak", {"query_p99_ms": 2.0}), _doc("query-api", {"a": 1.0})]
        cand = [_doc("soak", {"ops_per_second": 100.0}), _doc("fig7")]
        assert compare_headlines(base, cand) == []

    def test_render_drift_marks_breaches(self):
        base = [_doc("soak", {"query_p99_ms": 2.0})]
        cand = [_doc("soak", {"query_p99_ms": 40.0})]
        drifts = compare_headlines(base, cand)
        text = render_drift(drifts)
        assert "BREACH" in text
        assert "1 of 1 headline metric(s) regressed" in text
        assert "no comparable headline" in render_drift([])


class TestExtractHeadline:
    def test_prefers_explicit_headline_payload(self):
        doc = _doc("soak", {"query_p99_ms": 3.5})
        assert extract_headline(doc) == {"query_p99_ms": 3.5}

    def test_soak_fallback_from_windows(self):
        windows = [
            {
                "histograms": {
                    "query.seconds": {"count": 10, "p50": p50, "p99": p99}
                }
            }
            for p50, p99 in ((0.001, 0.002), (0.002, 0.004), (0.003, 0.008))
        ]
        doc = _doc("soak", metrics={"windows": windows})
        headline = extract_headline(doc)
        assert headline["query_p50_ms"] == 2.0   # median per-window p50
        assert headline["worst_window_p99_ms"] == 8.0

    def test_query_api_fallback_from_tables(self):
        table = {
            "title": "Batch of ...",
            "headers": ["index", "batch speedup"],
            "rows": [["Scan", "8.51x"], ["Grid", "1.22x"]],
        }
        doc = _doc("query-api", tables=[table])
        assert extract_headline(doc) == {
            "batch_speedup_scan": 8.51,
            "batch_speedup_grid": 1.22,
        }

    def test_rebalance_fallback_from_whole_run_table(self):
        table = {
            "title": "Whole run",
            "headers": [
                "engine", "peak balance", "final balance",
                "shards pruned %", "p50 (ms)", "p99 (ms)",
            ],
            "rows": [
                ["static STR", "1.99", "1.99", "50", "2.0", "8.0"],
                ["rebalanced", "1.21", "1.09", "60", "1.4", "4.0"],
            ],
        }
        doc = _doc("rebalance", tables=[table])
        headline = extract_headline(doc)
        assert headline == {
            "rebalanced_peak_balance": 1.21,
            "rebalanced_final_balance": 1.09,
            "rebalanced_p50_ms": 1.4,
            "rebalanced_p99_ms": 4.0,
        }

    def test_unrecognized_verb_yields_nothing(self):
        assert extract_headline(_doc("fig7")) == {}


class TestRunDiff:
    def _write(self, directory, doc):
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"BENCH_{doc['verb']}.json"
        path.write_text(json.dumps(doc), encoding="utf-8")

    def test_breach_exits_nonzero(self, tmp_path):
        self._write(tmp_path / "base", _doc("soak2", {"query_p99_ms": 2.0}))
        self._write(tmp_path / "cand", _doc("soak2", {"query_p99_ms": 40.0}))
        assert run_diff(tmp_path / "base", tmp_path / "cand") == 1

    def test_warn_only_downgrades_to_zero(self, tmp_path):
        self._write(tmp_path / "base", _doc("soak2", {"query_p99_ms": 2.0}))
        self._write(tmp_path / "cand", _doc("soak2", {"query_p99_ms": 40.0}))
        assert (
            run_diff(tmp_path / "base", tmp_path / "cand", warn_only=True)
            == 0
        )

    def test_self_diff_exits_zero_and_writes_out_file(self, tmp_path):
        self._write(tmp_path, _doc("soak2", {"query_p99_ms": 2.0}))
        out = tmp_path / "drift.txt"
        assert run_diff(tmp_path, tmp_path, out_file=out) == 0
        assert "within the" in out.read_text()

    def test_invalid_files_are_skipped_not_fatal(self, tmp_path):
        base = tmp_path / "base"
        base.mkdir()
        (base / "BENCH_bad.json").write_text("{not json")
        (base / "BENCH_wrong.json").write_text('{"schema": "other"}')
        assert run_diff(base, base) == 0
