"""Unit tests for the static SFC index and SFCracker."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.scan import ScanIndex
from repro.baselines.sfc import SFCIndex, SFCrackerIndex
from repro.datasets import make_uniform
from repro.errors import QueryError
from repro.geometry import Box
from repro.queries import RangeQuery, uniform_workload


class TestSFCIndex:
    def test_query_before_build_raises(self):
        ds = make_uniform(50, seed=1)
        idx = SFCIndex(ds.store, ds.universe)
        with pytest.raises(QueryError):
            idx.query(RangeQuery(Box.unit(3)))

    def test_build_sorts_codes(self):
        ds = make_uniform(300, seed=2)
        idx = SFCIndex(ds.store, ds.universe)
        idx.build()
        codes = idx._sorted_codes
        assert np.all(codes[:-1] <= codes[1:])

    def test_matches_scan(self):
        ds = make_uniform(1_000, seed=3)
        idx = SFCIndex(ds.store, ds.universe)
        idx.build()
        scan = ScanIndex(ds.store)
        for q in uniform_workload(ds.universe, 20, 1e-2, seed=4):
            assert np.array_equal(np.sort(idx.query(q)), np.sort(scan.query(q)))

    def test_false_positive_overhead_counted(self):
        ds = make_uniform(2_000, seed=5)
        idx = SFCIndex(ds.store, ds.universe)
        idx.build()
        q = uniform_workload(ds.universe, 1, 1e-2, seed=6)[0]
        hits = idx.query(q)
        assert idx.stats.objects_tested >= hits.size
        assert idx.stats.nodes_visited > 1, "query decomposes into intervals"

    def test_memory_accounting(self):
        ds = make_uniform(100, seed=7)
        idx = SFCIndex(ds.store, ds.universe)
        assert idx.memory_bytes() == 0
        idx.build()
        assert idx.memory_bytes() >= 100 * 16


class TestSFCracker:
    def test_first_query_initializes(self):
        ds = make_uniform(500, seed=8)
        idx = SFCrackerIndex(ds.store, ds.universe)
        assert idx.piece_count == 1
        q = uniform_workload(ds.universe, 1, 1e-2, seed=9)[0]
        idx.query(q)
        assert idx.piece_count > 1
        idx.validate_pieces()

    def test_matches_scan_over_sequence(self):
        ds = make_uniform(1_000, seed=10)
        idx = SFCrackerIndex(ds.store, ds.universe)
        scan = ScanIndex(ds.store)
        for q in uniform_workload(ds.universe, 30, 1e-2, seed=11):
            assert np.array_equal(np.sort(idx.query(q)), np.sort(scan.query(q)))
        idx.validate_pieces()

    def test_repeat_query_cracks_nothing_new(self):
        ds = make_uniform(1_000, seed=12)
        idx = SFCrackerIndex(ds.store, ds.universe)
        q = uniform_workload(ds.universe, 1, 1e-3, seed=13)[0]
        idx.query(q)
        cracks = idx.stats.cracks
        idx.query(q)
        assert idx.stats.cracks == cracks, "known boundaries are lookups"

    def test_pieces_partition_by_code(self):
        ds = make_uniform(800, seed=14)
        idx = SFCrackerIndex(ds.store, ds.universe)
        for q in uniform_workload(ds.universe, 10, 1e-2, seed=15):
            idx.query(q)
        idx.validate_pieces()

    def test_first_query_pays_more_reorganization(self):
        ds = make_uniform(2_000, seed=16)
        idx = SFCrackerIndex(ds.store, ds.universe)
        qs = uniform_workload(ds.universe, 10, 1e-3, seed=17)
        idx.query(qs[0])
        first = idx.stats.rows_reorganized
        for q in qs[1:]:
            idx.query(q)
        later_avg = (idx.stats.rows_reorganized - first) / 9
        assert first > later_avg, "first query cracks the untouched array"

    def test_results_match_static_counterpart(self):
        ds = make_uniform(700, seed=18)
        cracker = SFCrackerIndex(ds.store, ds.universe)
        static = SFCIndex(ds.store, ds.universe)
        static.build()
        for q in uniform_workload(ds.universe, 15, 1e-2, seed=19):
            assert np.array_equal(
                np.sort(cracker.query(q)), np.sort(static.query(q))
            )

    def test_memory_zero_before_first_query(self):
        ds = make_uniform(100, seed=20)
        idx = SFCrackerIndex(ds.store, ds.universe)
        assert idx.memory_bytes() == 0
