"""Unit tests for the per-index compaction paths (``on_compaction``).

Each structure absorbs the store's position remap its own way — QUASII
defragments its slice forest, the grid remaps CSR/overflow entries, the
R-Tree rewrites leaf row vectors, Scan does nothing, the static SFC
index remaps its sorted arrays, and the sharded engine compacts shard by
shard behind a dead-fraction policy — but all of them must answer with
exactly the same live-row set before and after, more cheaply after.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    MosaicIndex,
    RTreeIndex,
    ScanIndex,
    SFCIndex,
    SFCrackerIndex,
    UniformGridIndex,
)
from repro.core import QuasiiConfig, QuasiiIndex
from repro.datasets import BoxStore
from repro.errors import ConfigurationError
from repro.geometry import Box
from repro.queries import RangeQuery
from repro.sharding import ShardedIndex

UNIVERSE = Box((0.0, 0.0), (100.0, 100.0))
FULL = RangeQuery(Box((-1.0, -1.0), (101.0, 101.0)), seq=999)


def _store(n: int = 60, seed: int = 0) -> BoxStore:
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, 90, size=(n, 2))
    return BoxStore(lo, lo + rng.uniform(0, 5, size=(n, 2)))


def _expected_live(index) -> np.ndarray:
    store = index.store
    return np.sort(store.ids[store.live_rows()])


def _windows(seed: int = 2, k: int = 8) -> list[RangeQuery]:
    rng = np.random.default_rng(seed)
    out = []
    for i in range(k):
        qlo = rng.uniform(0, 70, size=2)
        out.append(RangeQuery(Box(tuple(qlo), tuple(qlo + 25.0)), seq=i))
    return out


MAKERS = (
    lambda s: ScanIndex(s),
    lambda s: QuasiiIndex(s, QuasiiConfig(2, (8, 4))),
    lambda s: UniformGridIndex(s, UNIVERSE, 5, merge_threshold=6),
    lambda s: UniformGridIndex(s, UNIVERSE, 5, assignment="replication"),
    lambda s: RTreeIndex(s, capacity=8),
)


class TestCompactVerb:
    def test_every_mutable_index_compacts_and_stays_correct(self):
        for make in MAKERS:
            idx = make(_store())
            idx.build()
            for q in _windows():
                idx.query(q)
            idx.delete(np.arange(0, 40, 2))
            before = np.sort(idx.query(FULL))
            reclaimed = idx.compact()
            assert reclaimed == 20, idx.name
            assert idx.store.n == idx.store.live_count, idx.name
            assert idx.stats.compactions >= 1, idx.name
            after = np.sort(idx.query(FULL))
            assert np.array_equal(before, after), idx.name
            assert np.array_equal(after, _expected_live(idx)), idx.name
            oracle = ScanIndex(idx.store)  # compacted store, fresh oracle
            for q in _windows(seed=7):
                assert np.array_equal(
                    np.sort(idx.query(q)), np.sort(oracle.query(q))
                ), idx.name

    def test_compact_with_no_dead_rows_is_a_noop(self):
        for make in MAKERS:
            idx = make(_store())
            idx.build()
            epoch = idx.store.epoch
            assert idx.compact() == 0, idx.name
            assert idx.store.epoch == epoch, idx.name
            assert idx.stats.compactions == 0, idx.name

    def test_updates_keep_flowing_after_compaction(self):
        for make in MAKERS:
            idx = make(_store())
            idx.build()
            idx.delete(np.arange(10))
            idx.compact()
            rng = np.random.default_rng(4)
            lo = rng.uniform(0, 90, size=(6, 2))
            new_ids = idx.insert(lo, lo + 2.0)
            got = np.sort(idx.query(FULL))
            assert np.isin(new_ids, got).all(), idx.name
            assert np.array_equal(got, _expected_live(idx)), idx.name

    def test_compact_everything_leaves_a_servable_empty_index(self):
        for make in MAKERS:
            idx = make(_store(20))
            idx.build()
            idx.delete(np.arange(20))
            assert idx.compact() == 20, idx.name
            assert idx.store.n == 0, idx.name
            assert idx.query(FULL).size == 0, idx.name


class TestQuasiiDefragmentation:
    def _refined(self, n: int = 120) -> QuasiiIndex:
        idx = QuasiiIndex(_store(n, seed=3), QuasiiConfig(2, (8, 4)))
        for q in _windows(seed=5, k=12):
            idx.query(q)
        return idx

    def test_structure_valid_and_scans_shrink(self):
        idx = self._refined()
        idx.delete(np.arange(0, 120, 2))
        idx.query(FULL)
        tombstoned = idx.stats.objects_tested
        idx.stats.reset()
        idx.compact()
        idx.validate_structure()
        idx.query(FULL)
        compacted = idx.stats.objects_tested
        assert compacted < tombstoned
        assert idx.store.n == idx.store.live_count == 60

    def test_emptied_slices_drop_and_fragments_merge(self):
        idx = self._refined()
        slices_before = sum(idx.slice_counts())
        # Kill nearly everything: surviving fragments must merge/drop.
        live = idx.store.ids[idx.store.live_rows()]
        idx.delete(live[:-6])
        idx.compact()
        idx.validate_structure()
        assert sum(idx.slice_counts()) < slices_before
        assert np.array_equal(np.sort(idx.query(FULL)), np.sort(live[-6:]))

    def test_final_slice_mbbs_retighten(self):
        idx = self._refined()
        live = idx.store.ids[idx.store.live_rows()]
        idx.delete(live[: live.size // 2])
        idx.compact()
        store = idx.store
        for top in idx._tops:
            stack = [top]
            while stack:
                lst = stack.pop()
                for s in lst:
                    if s.final:
                        sub_lo = store.lo[s.begin : s.end]
                        sub_hi = store.hi[s.begin : s.end]
                        assert np.allclose(s.mbb_lo, sub_lo.min(axis=0))
                        assert np.allclose(s.mbb_hi, sub_hi.max(axis=0))
                    if s.children is not None:
                        stack.append(s.children)

    def test_compact_with_pending_buffer_keeps_staged_rows(self):
        idx = self._refined()
        rng = np.random.default_rng(11)
        lo = rng.uniform(0, 90, size=(4, 2))
        staged = idx.insert(lo, lo + 2.0)
        idx.delete(np.arange(0, 30))
        assert idx.compact() == 30
        assert idx.pending_updates() == 4
        got = np.sort(idx.query(FULL))
        assert np.isin(staged, got).all()
        idx.validate_structure()

    def test_structure_survives_compact_query_cycles(self):
        idx = QuasiiIndex(_store(100, seed=9), QuasiiConfig(2, (8, 4)))
        rng = np.random.default_rng(13)
        for round_ in range(5):
            for q in _windows(seed=20 + round_, k=4):
                idx.query(q)
            live = idx.store.ids[idx.store.live_rows()]
            if live.size > 10:
                idx.delete(rng.choice(live, size=8, replace=False))
            idx.compact()
            idx.validate_structure()
            lo = rng.uniform(0, 90, size=(3, 2))
            idx.insert(lo, lo + 2.0)
        assert np.array_equal(np.sort(idx.query(FULL)), _expected_live(idx))
        idx.validate_structure()


class TestGridCompaction:
    def test_csr_and_overflow_entries_remap(self):
        grid = UniformGridIndex(_store(), UNIVERSE, 5, merge_threshold=1000)
        grid.build()
        rng = np.random.default_rng(6)
        lo = rng.uniform(0, 90, size=(5, 2))
        inserted = grid.insert(lo, lo + 2.0)  # lands in overflow
        assert grid.pending_updates() == 5
        grid.delete(np.concatenate([np.arange(20), inserted[:2]]))
        grid.compact()
        assert grid.pending_updates() == 3  # dead overflow entries shed
        assert grid._sorted_rows.size == 40  # dead CSR entries shed
        got = np.sort(grid.query(FULL))
        assert np.array_equal(got, _expected_live(grid))

    def test_replication_factor_stays_exact_after_compaction(self):
        grid = UniformGridIndex(_store(), UNIVERSE, 5, assignment="replication")
        grid.build()
        grid.insert(np.array([[5.0, 5.0]]), np.array([[80.0, 80.0]]))
        grid.delete(np.arange(30))
        factor_tombstoned = grid.replication_factor()
        grid.compact()
        assert grid.replication_factor() == pytest.approx(factor_tombstoned)
        assert np.array_equal(np.sort(grid.query(FULL)), _expected_live(grid))


class TestRTreeCompaction:
    def test_leaf_rows_remap_and_queries_agree(self):
        rtree = RTreeIndex(_store(100, seed=2), capacity=8)
        rtree.build()
        rtree.delete(np.arange(0, 100, 3))
        nodes_before = rtree.root.count_nodes()
        rtree.compact()
        assert rtree.root.count_nodes() <= nodes_before
        assert np.array_equal(np.sort(rtree.query(FULL)), _expected_live(rtree))

    def test_straggler_dead_rows_are_dropped(self):
        # A tree built over a store that was tombstoned out-of-band (the
        # tree never saw the deletes): compaction absorbs them via remap.
        store = _store(40, seed=8)
        store.delete_ids(np.arange(5))
        rtree = RTreeIndex(store, capacity=8)
        rtree.build()  # leaves reference dead rows, filtered by live mask
        remap = store.compact()
        rtree.on_compaction(remap)
        got = np.sort(rtree.query(FULL))
        assert np.array_equal(got, np.arange(5, 40))


class TestStaticIndexCompaction:
    def test_sfc_absorbs_out_of_band_compaction(self):
        store = _store(80, seed=4)
        sfc = SFCIndex(store, UNIVERSE)
        sfc.build()
        store.delete_ids(np.arange(0, 80, 2))
        sfc.on_compaction(store.compact())
        got = np.sort(sfc.query(FULL))
        assert np.array_equal(got, np.arange(1, 80, 2))

    def test_unsupporting_indexes_fail_loudly(self):
        for make in (
            lambda s: SFCrackerIndex(s, UNIVERSE),
            lambda s: MosaicIndex(s, UNIVERSE),
        ):
            store = _store(30, seed=5)
            idx = make(store)
            idx.build()
            idx.query(FULL)
            store.delete_ids(np.array([0]))
            remap = store.compact()
            with pytest.raises(ConfigurationError, match="compaction"):
                idx.on_compaction(remap)


class TestShardedCompaction:
    def _engine(self, n_shards: int = 4) -> ShardedIndex:
        engine = ShardedIndex(_store(120, seed=6), n_shards=n_shards)
        engine.build()
        return engine

    def test_full_compaction_compacts_mirror_and_every_shard(self):
        engine = self._engine()
        engine.delete(np.arange(0, 120, 2))
        before = np.sort(engine.query(FULL))
        assert engine.compact() == 60
        assert engine.stats.compactions == 1  # one event, not K+1
        assert engine.store.n == engine.store.live_count
        for shard in engine.shards:
            assert shard.store.n == shard.store.live_count
            shard.index.validate_structure()
        engine.validate_routing()
        assert np.array_equal(np.sort(engine.query(FULL)), before)

    def test_maybe_compact_honors_the_dead_fraction_policy(self):
        engine = self._engine()
        live = engine.store.ids[engine.store.live_rows()]
        engine.delete(live[:6])  # 5% dead: below the 0.3 threshold
        assert engine.maybe_compact(0.3) == 0
        assert engine.store.n_dead == 6
        engine.delete(live[6:70])
        reclaimed = engine.maybe_compact(0.3)
        assert reclaimed > 0
        assert engine.store.n == engine.store.live_count
        engine.validate_routing()
        assert np.array_equal(np.sort(engine.query(FULL)), np.sort(live[70:]))

    def test_compact_sweeps_shards_a_partial_policy_pass_left_dirty(self):
        # Two spatial clusters so the STR shards have very different dead
        # fractions: the policy pass compacts the hot shard and the
        # mirror, leaving the cold shard tombstoned behind a clean
        # mirror — the full verb must still sweep it.
        rng = np.random.default_rng(15)
        left = rng.uniform(0, 20, size=(40, 2))
        right = rng.uniform(70, 90, size=(40, 2))
        lo = np.vstack([left, right])
        engine = ShardedIndex(BoxStore(lo, lo + 1.0), n_shards=2, partitioner="str")
        engine.build()
        engine.delete(np.concatenate([np.arange(30), np.array([41, 42, 43, 44])]))
        assert engine.maybe_compact(0.3) == 34  # hot shard + mirror
        assert engine.store.n_dead == 0
        assert sum(s.store.n_dead for s in engine.shards) == 4  # cold shard
        before = np.sort(engine.query(FULL))
        assert engine.compact() == 0  # those rows were already counted
        for shard in engine.shards:
            assert shard.store.n == shard.store.live_count
        engine.validate_routing()
        assert np.array_equal(np.sort(engine.query(FULL)), before)

    def test_compact_and_maybe_compact_agree_on_accounting(self):
        # Both verbs count logical rows (mirror tombstones), so for the
        # same state they report the same number.
        a = self._engine()
        b = self._engine()
        a.delete(np.arange(50))
        b.delete(np.arange(50))
        assert a.compact() == b.maybe_compact(0.0) == 50

    def test_maybe_compact_validates_the_threshold(self):
        engine = self._engine(2)
        with pytest.raises(ConfigurationError, match="dead_fraction"):
            engine.maybe_compact(1.5)

    def test_compaction_retightens_shard_pruning_mbbs(self):
        # Two spatial clusters: killing one entirely must, after
        # compaction, let its shard prune queries aimed at the dead area.
        rng = np.random.default_rng(14)
        left = rng.uniform(0, 20, size=(40, 2))
        right = rng.uniform(70, 90, size=(40, 2))
        lo = np.vstack([left, right])
        store = BoxStore(lo, lo + 1.0)
        engine = ShardedIndex(store, n_shards=2, partitioner="str")
        engine.build()
        engine.delete(np.arange(40))  # the whole left cluster
        probe = RangeQuery(Box((0.0, 0.0), (15.0, 15.0)), seq=1)
        engine.stats.reset()
        assert engine.query(probe).size == 0
        visited_tombstoned = engine.stats.shards_visited
        engine.compact()
        engine.stats.reset()
        assert engine.query(probe).size == 0
        assert engine.stats.shards_visited < visited_tombstoned
        assert engine.stats.shards_pruned == engine.n_shards
